#!/usr/bin/env python3
"""CI smoke gate for trace-format compatibility and checkpointed resume.

Hard-gates three properties this repo's long-run story depends on:

* **Container parity** — one generated workload serialized as legacy v1,
  chunked v2, and compressed v2 must decode to byte-identical request
  streams under both the scalar and the vectorized parser (6 decodings,
  one truth), and ``trace_record_count`` must agree without decoding.
* **Resume bit-exactness** — for every registered scheme and every
  fastpath/vectorized mode, interrupting a run at an arbitrary cut
  (checkpoint, dirty the process with an unrelated run, restore in the
  same interpreter, finish) must produce a result whose lossless state
  bytes (:func:`result_state_bytes`) equal the uninterrupted run's.
* **CLI resume** — the actual ``repro run --checkpoint/--stop-after``
  (exit code 3) followed by ``repro run --resume`` in a *fresh process*
  must export state bytes identical to a direct run's.

Exit status: 0 on success, 2 on any mismatch (a resume that drifts by
one bit silently corrupts week-long runs — never acceptable).

Usage::

    PYTHONPATH=src python benchmarks/trace_resume_smoke.py [--quick]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from dataclasses import replace
from itertools import islice
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(REPO / "src"))

from repro.common import small_test_config
from repro.dedup import make_scheme
from repro.perf import memo
from repro.registry import registered_scheme_names
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.export import result_state_bytes
from repro.sim.session import Session
from repro.vec import flags as vec_flags
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import (
    read_trace_list,
    roundtrip_bytes,
    trace_record_count,
    write_trace,
)

REQUESTS = 2_000
#: Interrupt points, cycled per (scheme, mode) cell so epoch-aligned and
#: mid-epoch cuts are both exercised.
CUTS = (1_337, 1_024, 999, 512)

failures: List[str] = []


def fail(message: str) -> None:
    failures.append(message)
    print(f"FAIL  {message}")


def ok(message: str) -> None:
    print(f"ok    {message}")


def _keys(requests):
    return [(r.address, r.access, r.data, r.issue_time_ns, r.core, r.seq)
            for r in requests]


def check_container_parity() -> None:
    import io
    original = TraceGenerator("gcc", seed=13).generate_list(1_500)
    truth = _keys(original)
    blobs = {
        "v1": None, "v2": None, "v2z": None,
    }
    for label, kwargs in (("v1", dict(version=1)),
                          ("v2", dict(version=2, chunk_records=256)),
                          ("v2z", dict(version=2, chunk_records=256,
                                       compress=True))):
        buf = io.BytesIO()
        write_trace(original, buf, **kwargs)
        blobs[label] = buf.getvalue()
    saved = vec_flags.ENABLED
    try:
        for label, blob in blobs.items():
            count = trace_record_count(io.BytesIO(blob))
            if count != len(original):
                fail(f"trace_record_count({label}) = {count}")
                continue
            for vec in (False, True):
                vec_flags.ENABLED = vec
                decoded = _keys(read_trace_list(io.BytesIO(blob)))
                mode = "vec" if vec else "scalar"
                if decoded != truth:
                    fail(f"container parity {label}/{mode}")
                else:
                    ok(f"container parity {label}/{mode} "
                       f"({len(blob)} bytes)")
    finally:
        vec_flags.ENABLED = saved
    # The checked-in format default must still round-trip by default.
    if _keys(roundtrip_bytes(original)) != truth:
        fail("default-version roundtrip")


def _mode_config(fast: bool, vec: bool):
    return replace(small_test_config(), use_fastpath=fast,
                   use_vectorized=vec)


def _direct(trace, scheme_name, config) -> bytes:
    memo.reset_all()
    engine = SimulationEngine(make_scheme(scheme_name, config),
                              EngineConfig())
    result = engine.run(iter(trace), app="gate", total_hint=len(trace))
    return result_state_bytes(result)


def _resumed(trace, scheme_name, config, cut: int) -> bytes:
    memo.reset_all()
    engine = SimulationEngine(make_scheme(scheme_name, config),
                              EngineConfig())
    session = engine.open_session(app="gate", total_hint=len(trace))
    stream = iter(trace)
    session.feed(islice(stream, cut))
    blob = session.checkpoint()
    # Dirty the process-global memo caches with an unrelated run before
    # restoring: a resume must not depend on leftover process state.
    other = SimulationEngine(make_scheme("Baseline", small_test_config()))
    other.run(TraceGenerator("lbm", seed=5).generate(300), app="dirt",
              total_hint=300)
    restored = Session.restore(blob)
    replay = iter(trace)
    for _ in range(restored.consumed):
        next(replay)
    restored.feed(replay)
    return result_state_bytes(restored.finalize())


def check_resume_parity(quick: bool) -> None:
    schemes = list(registered_scheme_names())
    modes = [(True, True), (True, False), (False, True), (False, False)]
    if quick:
        schemes = ["ESD", "NV-Dedup"]
        modes = [(True, True), (False, False)]
    trace = TraceGenerator("gcc", seed=13).generate_list(REQUESTS)
    cell = 0
    for scheme_name in schemes:
        for fast, vec in modes:
            cut = CUTS[cell % len(CUTS)]
            cell += 1
            config = _mode_config(fast, vec)
            direct = _direct(trace, scheme_name, config)
            resumed = _resumed(trace, scheme_name, config, cut)
            mode = f"fast={int(fast)} vec={int(vec)} cut={cut}"
            if direct != resumed:
                fail(f"resume parity {scheme_name} [{mode}]")
            else:
                ok(f"resume parity {scheme_name} [{mode}]")


def check_cli_resume() -> None:
    import os
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))

    def cli(*args, expect=0):
        proc = subprocess.run([sys.executable, "-m", "repro.cli", *args],
                              capture_output=True, text=True, env=env)
        if proc.returncode != expect:
            fail(f"cli {' '.join(args[:4])}... exited {proc.returncode} "
                 f"(wanted {expect}): {proc.stderr.strip()[:200]}")
            return False
        return True

    with tempfile.TemporaryDirectory() as tmp:
        trace = f"{tmp}/gate.esdtrace"
        ck = f"{tmp}/gate.ckpt"
        direct = f"{tmp}/direct.json"
        resumed = f"{tmp}/resumed.json"
        if not cli("gen-trace", "--app", "gcc", "--requests", "4000",
                   "--out", trace, "--compress"):
            return
        if not cli("run", "--scheme", "ESD", "--trace", trace,
                   "--export-state", direct):
            return
        if not cli("run", "--scheme", "ESD", "--trace", trace,
                   "--checkpoint", ck, "--checkpoint-every", "700",
                   "--stop-after", "1500", expect=3):
            return
        if not cli("run", "--scheme", "ESD", "--trace", trace,
                   "--resume", ck, "--export-state", resumed):
            return
        direct_bytes = Path(direct).read_bytes()
        resumed_bytes = Path(resumed).read_bytes()
        if direct_bytes != resumed_bytes:
            fail("cli resume state bytes differ from direct run")
        else:
            ok(f"cli resume across processes ({len(direct_bytes)} "
               f"state bytes)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="2 schemes x 2 modes instead of the full "
                             "8 x 4 resume matrix")
    args = parser.parse_args()

    check_container_parity()
    check_resume_parity(args.quick)
    check_cli_resume()

    if failures:
        print(f"\ntrace-resume smoke: {len(failures)} failure(s)")
        return 2
    print("\ntrace-resume smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
