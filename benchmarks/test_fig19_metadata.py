"""Figure 19: metadata space overhead normalized to Dedup_SHA1.

Paper: ESD cuts metadata space by 81.2 % vs Dedup_SHA1 (DeWrite by
60.9 %), because ESD keeps fingerprints on-chip only and stores just the
packed AMT in NVMM.
"""

from repro.analysis.experiments import fig19_metadata_overhead


def test_fig19_metadata_overhead(benchmark, evaluation_grid, emit):
    result = benchmark.pedantic(
        fig19_metadata_overhead, kwargs={"grid": evaluation_grid,
                                         "app": "gcc"},
        rounds=1, iterations=1)
    emit("fig19_metadata", result.render())
    assert result.normalized["Dedup_SHA1"] == 1.0
    # Ordering and rough magnitudes per the paper.
    assert result.normalized["DeWrite"] < 1.0
    assert result.normalized["ESD"] < result.normalized["DeWrite"]
    assert result.normalized["ESD"] < 0.4   # paper: 0.188
