"""Figure 13: read speedup normalized to Baseline.

Paper: ESD speeds up reads for every application (up to 5.3x) by removing
duplicate writes from the banks reads contend with; Dedup_SHA1 degrades
reads for most applications.
"""

from repro.analysis.experiments import fig13_read_speedup


def test_fig13_read_speedup(benchmark, evaluation_grid, emit):
    result = benchmark.pedantic(
        fig13_read_speedup, args=(evaluation_grid,), rounds=1, iterations=1)
    emit("fig13_read_speedup", result.render())
    assert result.geomean("ESD") >= 1.0
    assert result.best("ESD") > 1.5
    assert result.geomean("ESD") > result.geomean("Dedup_SHA1")
    assert result.geomean("ESD") > result.geomean("DeWrite")
