"""Table I: the system configuration used throughout the evaluation."""

from repro.analysis.experiments import table1_configuration


def test_table1_configuration(benchmark, emit):
    result = benchmark.pedantic(table1_configuration, rounds=1, iterations=1)
    text = result.render()
    emit("table1_config", text)
    assert "read 75 ns / write 150 ns" in text
