#!/usr/bin/env python3
"""Performance smoke benchmark for the kernel fast path (``repro.perf``).

Produces the committed ``BENCH_perf_smoke.json`` artifact with two sections:

* **grid** — end-to-end timing of the 3-app x 4-scheme evaluation grid,
  run back-to-back with the fast path off (``seed_*`` fields: the
  reference kernels) and on (``opt_*`` fields).  Rounds are interleaved
  off/on so machine noise hits both sides equally; speedups are medians
  over the per-round ratios.  The section also carries the correctness
  gate: ``grids_identical`` is true iff every summary row (latencies,
  p99, write reduction, energy, IPC, PCM writes) is bit-identical
  between the two modes.
* **kernels** — per-kernel memo on/off micro-benchmarks over a
  content-local working set (a small set of distinct lines cycled many
  times, the locality regime the memo caches are designed for).

CPU seconds (``time.process_time``) are the primary metric; wall-clock is
reported alongside but is noisy on shared machines, so CI gates only on
``grids_identical`` — timings are report-only.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py --quick
    PYTHONPATH=src python benchmarks/perf_smoke.py --output BENCH_perf_smoke.json

Exit status: 0 on success, 2 when the fast-path grid diverges from the
reference grid (a correctness regression, never acceptable).
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import random
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.types import CACHE_LINE_SIZE
from repro.crypto.counter_mode import _derive_pad
from repro.crypto.fingerprints import make_engine
from repro.ecc.codec import decode_line, line_ecc, line_ecc_uncached
from repro.perf import fastpath, reset_caches
from repro.sim.runner import ExperimentConfig, run_grid, scaled_system_config
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.trace import read_trace_list, write_trace

# The reference grid: the paper's three most content-diverse SPEC apps
# against all four evaluated schemes, on a fixed seed so the trace --- and
# therefore every summary metric --- is deterministic.
GRID_APPS = ("gcc", "deepsjeng", "lbm")
GRID_SCHEMES = ("Baseline", "Dedup_SHA1", "DeWrite", "ESD")
GRID_SEED = 7

#: Distinct line contents in the kernel working set.  Small relative to the
#: cycle count, mirroring the content locality of real write streams.
KERNEL_DISTINCT_LINES = 64


# ----------------------------------------------------------------------
# Grid benchmark
# ----------------------------------------------------------------------

def _grid_config(requests: int, fast: bool) -> ExperimentConfig:
    return ExperimentConfig(
        apps=list(GRID_APPS),
        schemes=list(GRID_SCHEMES),
        requests_per_app=requests,
        system=replace(scaled_system_config(), use_fastpath=fast),
        seed=GRID_SEED,
    )


def _run_rows(requests: int, fast: bool) -> Dict[str, Dict[str, float]]:
    """Run the grid in one mode; returns ``{"app/scheme": summary_row}``."""
    grid = run_grid(_grid_config(requests, fast))
    return {f"{app}/{scheme}": result.summary_row()
            for (app, scheme), result in grid.items()}


def bench_grid(requests: int, rounds: int) -> Dict:
    """Interleaved off/on grid timing plus the summary-row parity check."""
    round_records: List[Dict[str, float]] = []
    rows_off: Dict = {}
    rows_on: Dict = {}
    identical = True
    for _ in range(rounds):
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        rows_off = _run_rows(requests, fast=False)
        wall1 = time.perf_counter()
        cpu1 = time.process_time()
        rows_on = _run_rows(requests, fast=True)
        wall2 = time.perf_counter()
        cpu2 = time.process_time()
        seed_cpu = cpu1 - cpu0
        opt_cpu = cpu2 - cpu1
        seed_wall = wall1 - wall0
        opt_wall = wall2 - wall1
        round_records.append({
            "seed_cpu_s": seed_cpu,
            "opt_cpu_s": opt_cpu,
            "cpu_speedup": seed_cpu / opt_cpu if opt_cpu > 0 else 0.0,
            "seed_wall_s": seed_wall,
            "opt_wall_s": opt_wall,
            "wall_speedup": seed_wall / opt_wall if opt_wall > 0 else 0.0,
        })
        # Summary rows are deterministic per mode, so any round's pair is
        # representative; check every round anyway (it is free).
        identical = identical and rows_off == rows_on
    return {
        "apps": list(GRID_APPS),
        "schemes": list(GRID_SCHEMES),
        "seed": GRID_SEED,
        "requests_per_app": requests,
        "jobs": 1,  # timed serially; parallel timing would measure the pool
        "rounds": round_records,
        "median_cpu_speedup": statistics.median(
            r["cpu_speedup"] for r in round_records),
        "median_wall_speedup": statistics.median(
            r["wall_speedup"] for r in round_records),
        "grids_identical": identical,
    }


# ----------------------------------------------------------------------
# Kernel micro-benchmarks
# ----------------------------------------------------------------------

def _working_set(count: int = KERNEL_DISTINCT_LINES,
                 seed: int = 0xE5D) -> List[bytes]:
    rng = random.Random(seed)
    return [rng.randbytes(CACHE_LINE_SIZE) for _ in range(count)]


def _kernel_stream(ops: int) -> List[bytes]:
    lines = _working_set()
    return [lines[i % len(lines)] for i in range(ops)]


def _bench_line_ecc(ops: int) -> Callable[[], None]:
    stream = _kernel_stream(ops)

    def run() -> None:
        for data in stream:
            line_ecc(data)
    return run


def _bench_decode_line_clean(ops: int) -> Callable[[], None]:
    stream = _kernel_stream(ops)
    # Pair every line with its correct ECC (the clean, no-fault decode that
    # dominates simulation reads); computed uncached so setup cost never
    # warms the caches under test.
    pairs = [(data, line_ecc_uncached(data)) for data in _working_set()]
    stream_pairs = [pairs[i % len(pairs)] for i in range(ops)]
    del stream

    def run() -> None:
        for data, ecc in stream_pairs:
            decode_line(data, ecc)
    return run


def _bench_counter_pad(ops: int) -> Callable[[], None]:
    key = b"\x13" * 32
    coords = [(line, 1) for line in range(KERNEL_DISTINCT_LINES)]
    stream = [coords[i % len(coords)] for i in range(ops)]

    def run() -> None:
        for line, counter in stream:
            _derive_pad(key, line, counter)
    return run


def _bench_fingerprint(name: str, ops: int) -> Callable[[], None]:
    engine = make_engine(name)
    stream = _kernel_stream(ops)

    def run() -> None:
        fingerprint = engine.fingerprint
        for data in stream:
            fingerprint(data)
    return run


def _bench_trace_roundtrip(ops: int) -> Callable[[], None]:
    profile = get_profile(GRID_APPS[0])
    requests = TraceGenerator(profile, seed=GRID_SEED).generate_list(ops)

    def run() -> None:
        buffer = io.BytesIO()
        write_trace(requests, buffer)
        buffer.seek(0)
        read_trace_list(buffer)
    return run


def _time_kernel(factory: Callable[[int], Callable[[], None]],
                 ops: int, repeats: int, enabled: bool) -> float:
    """Median ns/op over ``repeats`` runs in one fast-path mode."""
    run = factory(ops)
    samples = []
    with fastpath(enabled):
        for _ in range(repeats):
            reset_caches()
            start = time.process_time()
            run()
            samples.append((time.process_time() - start) / ops * 1e9)
    return statistics.median(samples)


def bench_kernels(ops: int, repeats: int) -> Dict[str, Dict[str, float]]:
    factories: Dict[str, Callable[[int], Callable[[], None]]] = {
        "line_ecc": _bench_line_ecc,
        "decode_line_clean": _bench_decode_line_clean,
        "counter_pad": _bench_counter_pad,
        "fingerprint_sha1": lambda n: _bench_fingerprint("sha1", n),
        "fingerprint_crc": lambda n: _bench_fingerprint("crc32", n),
        "trace_roundtrip": _bench_trace_roundtrip,
    }
    report: Dict[str, Dict[str, float]] = {}
    for name, factory in factories.items():
        off = _time_kernel(factory, ops, repeats, enabled=False)
        on = _time_kernel(factory, ops, repeats, enabled=True)
        report[name] = {
            "memo_off_ns_per_op": off,
            "memo_on_ns_per_op": on,
            "memo_speedup": off / on if on > 0 else 0.0,
        }
    return report


# ----------------------------------------------------------------------
# Observability metrics report
# ----------------------------------------------------------------------

def emit_metrics_report(requests: int, path: Path) -> None:
    """Run one observed grid cell and write its metrics report.

    The report (``repro.obs`` registry snapshot plus trace-ring stats) is
    a CI artifact: it documents the migrated ``memo_*`` counters and the
    request-latency histograms for the benchmark configuration.  It is
    informational — the only hard gate stays ``grids_identical``.
    """
    from repro.sim.runner import run_app

    system = scaled_system_config().with_observability(enabled=True)
    app, scheme = GRID_APPS[0], GRID_SCHEMES[-1]
    result = run_app(app, [scheme], requests=requests, system=system,
                     seed=GRID_SEED)[scheme]
    assert result.obs is not None
    report = {"app": app, "scheme": scheme, "requests": requests,
              "obs_schema_version": result.obs["obs_schema_version"],
              "metrics": result.obs["metrics"],
              "trace_stats": result.obs["trace_stats"]}
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fast-path perf smoke: grid timing, kernel micro-"
                    "benchmarks, and the off/on summary-row parity gate.")
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: 2000 requests/app, 1 grid round")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override requests per app")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override interleaved grid timing rounds")
    parser.add_argument("--metrics-report", type=Path, default=None,
                        help="also run one observed cell and write its "
                             "repro.obs metrics report here")
    args = parser.parse_args(argv)

    requests = args.requests or (2000 if args.quick else 8000)
    rounds = args.rounds or (1 if args.quick else 5)
    kernel_ops = 2000 if args.quick else 20000
    kernel_repeats = 3 if args.quick else 5

    grid = bench_grid(requests, rounds)
    kernels = bench_kernels(kernel_ops, kernel_repeats)

    report = {
        "benchmark": "simulator-performance",
        "grid": grid,
        "kernels": kernels,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "quick": bool(args.quick),
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.metrics_report is not None:
        emit_metrics_report(requests, args.metrics_report)
        print(f"wrote {args.metrics_report}")
    print(f"grid: median cpu speedup {grid['median_cpu_speedup']:.2f}x, "
          f"median wall speedup {grid['median_wall_speedup']:.2f}x, "
          f"identical={grid['grids_identical']}", file=sys.stderr)
    if not grid["grids_identical"]:
        print("FAIL: fast-path grid diverges from the reference grid",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
