#!/usr/bin/env python3
"""Performance smoke benchmark for the host-CPU fast paths.

Produces the committed ``BENCH_perf_smoke.json`` artifact with four
sections:

* **grid** — end-to-end timing of the 3-app x 4-scheme evaluation grid,
  run back-to-back in three modes per round: *reference* (memo and
  vectorization off), *memo* (``repro.perf`` fast path only), and
  *vectorized* (memo plus the ``repro.vec`` epoch-batched engine).
  Rounds interleave the modes so machine noise hits all sides equally;
  speedups are medians over per-round ratios.  The section carries the
  correctness gate: ``grids_identical`` is true iff every summary row
  (latencies, p99, write reduction, energy, IPC, PCM writes) is
  bit-identical across all three modes.
* **roster_parity** — the same bit-exactness gate over **all eight**
  registered schemes (the grid times only the paper's four headliners),
  vectorized on vs off.
* **long_trace** — serialization of a long request trace (write + read
  round trip), vectorized reader on vs off, with byte-identity of the
  written stream and equality of the reread requests gated.  This is the
  hot path the memo fast path could not move (1.03x in PR 3).
* **streaming_capture** — peak-RSS contrast (``ru_maxrss`` in a fresh
  subprocess per strategy) of streaming a ≥200k-record generator into
  the chunked v2 trace writer vs materializing the full request list
  first.  Report-only: it documents that capture memory is bounded by
  the chunk size, not the trace length.
* **kernels** — per-kernel memo on/off micro-benchmarks over a
  content-local working set (a small set of distinct lines cycled many
  times, the locality regime the memo caches are designed for).
* **serve_throughput** — requests/sec streaming one trace through the
  :mod:`repro.serve` loopback server vs the same trace run directly
  (report-only; the serve parity hard gate is ``serve_smoke.py``).
* **serve_mp_throughput** — the multi-process serve back end: the full
  scheme roster served through a 3-worker pool with full bit-exactness
  gated, plus aggregate multi-tenant req/s at ``workers=1`` vs
  ``workers=4`` (report-only — the scaling ratio is meaningful only on
  hosts with ≥ 4 free cores; ``cpu_count`` is recorded alongside).
* **sweep_throughput** — jobs/sec for every (execution, storage) backend
  pair of the sweep layer (pool/queue x dir/sqlite).  Timings are
  report-only; each pair's byte-identity to the serial reference grid
  is a hard gate (the distributed fault-injection gate is
  ``sweep_distributed_smoke.py``).

Besides overwriting the full report, each run appends one compact,
timestamped, schema-versioned entry (headline medians plus the gate
booleans) to the ``BENCH_history.json`` trajectory file, so performance
across commits is a curve, not a single overwritten point.

CPU seconds (``time.process_time``) are the primary metric; wall-clock is
reported alongside but is noisy on shared machines, so CI gates only on
the parity/identity booleans — timings are report-only.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py --quick
    PYTHONPATH=src python benchmarks/perf_smoke.py --output BENCH_perf_smoke.json

Exit status: 0 on success, 2 when any mode's grid diverges from the
reference grid, the roster parity check fails, or the long-trace round
trip is not byte-identical (correctness regressions, never acceptable).
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import random
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.types import CACHE_LINE_SIZE
from repro.crypto.counter_mode import _derive_pad
from repro.crypto.fingerprints import make_engine
from repro.ecc.codec import decode_line, line_ecc, line_ecc_uncached
from repro.perf import fastpath, reset_caches
from repro.registry import registered_scheme_names
from repro.sim.runner import (
    ExperimentConfig,
    run_app,
    run_grid,
    scaled_system_config,
)
from repro.vec import vectorized
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.trace import read_trace_list, write_trace

# The reference grid: the paper's three most content-diverse SPEC apps
# against all four evaluated schemes, on a fixed seed so the trace --- and
# therefore every summary metric --- is deterministic.
GRID_APPS = ("gcc", "deepsjeng", "lbm")
GRID_SCHEMES = ("Baseline", "Dedup_SHA1", "DeWrite", "ESD")
GRID_SEED = 7

#: Distinct line contents in the kernel working set.  Small relative to the
#: cycle count, mirroring the content locality of real write streams.
KERNEL_DISTINCT_LINES = 64


# ----------------------------------------------------------------------
# Grid benchmark
# ----------------------------------------------------------------------

#: The three timed execution modes: (label, use_fastpath, use_vectorized).
GRID_MODES = (
    ("reference", False, False),
    ("memo", True, False),
    ("vectorized", True, True),
)


def _grid_config(requests: int, fast: bool, vec: bool) -> ExperimentConfig:
    return ExperimentConfig(
        apps=list(GRID_APPS),
        schemes=list(GRID_SCHEMES),
        requests_per_app=requests,
        system=replace(scaled_system_config(), use_fastpath=fast,
                       use_vectorized=vec),
        seed=GRID_SEED,
    )


def _run_rows(requests: int, fast: bool, vec: bool) -> Dict[str, Dict[str, float]]:
    """Run the grid in one mode; returns ``{"app/scheme": summary_row}``."""
    grid = run_grid(_grid_config(requests, fast, vec))
    return {f"{app}/{scheme}": result.summary_row()
            for (app, scheme), result in grid.items()}


def bench_grid(requests: int, rounds: int) -> Dict:
    """Interleaved three-mode grid timing plus the parity check."""
    round_records: List[Dict[str, float]] = []
    identical = True
    for _ in range(rounds):
        cpu: Dict[str, float] = {}
        wall: Dict[str, float] = {}
        rows: Dict[str, Dict] = {}
        for label, fast, vec in GRID_MODES:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            rows[label] = _run_rows(requests, fast, vec)
            cpu[label] = time.process_time() - cpu0
            wall[label] = time.perf_counter() - wall0
        record = {f"{label}_cpu_s": cpu[label] for label in cpu}
        record.update({f"{label}_wall_s": wall[label] for label in wall})
        for num, den, name in (("reference", "memo", "memo_cpu_speedup"),
                               ("reference", "vectorized",
                                "vec_cpu_speedup"),
                               ("memo", "vectorized",
                                "vec_vs_memo_cpu_speedup")):
            record[name] = cpu[num] / cpu[den] if cpu[den] > 0 else 0.0
        record["vec_wall_speedup"] = (wall["reference"] / wall["vectorized"]
                                      if wall["vectorized"] > 0 else 0.0)
        round_records.append(record)
        # Summary rows are deterministic per mode, so any round's trio is
        # representative; check every round anyway (it is free).
        reference = rows["reference"]
        identical = identical and all(rows[label] == reference
                                      for label, _, _ in GRID_MODES)
    return {
        "apps": list(GRID_APPS),
        "schemes": list(GRID_SCHEMES),
        "modes": [label for label, _, _ in GRID_MODES],
        "seed": GRID_SEED,
        "requests_per_app": requests,
        "jobs": 1,  # timed serially; parallel timing would measure the pool
        "rounds": round_records,
        "median_cpu_speedup": statistics.median(
            r["vec_cpu_speedup"] for r in round_records),
        "median_memo_cpu_speedup": statistics.median(
            r["memo_cpu_speedup"] for r in round_records),
        "median_vec_vs_memo_cpu_speedup": statistics.median(
            r["vec_vs_memo_cpu_speedup"] for r in round_records),
        "median_wall_speedup": statistics.median(
            r["vec_wall_speedup"] for r in round_records),
        "grids_identical": identical,
    }


# ----------------------------------------------------------------------
# Full-roster parity and the long-trace round
# ----------------------------------------------------------------------

def bench_roster_parity(requests: int) -> Dict:
    """Bit-exact summary rows, vectorized on vs off, for all 8 schemes."""
    schemes = registered_scheme_names()
    rows = {}
    for vec in (False, True):
        system = replace(scaled_system_config(), use_fastpath=True,
                         use_vectorized=vec)
        results = run_app(GRID_APPS[0], schemes, requests=requests,
                          system=system, seed=GRID_SEED)
        rows[vec] = {name: r.summary_row() for name, r in results.items()}
    return {
        "app": GRID_APPS[0],
        "schemes": list(schemes),
        "requests": requests,
        "identical": rows[False] == rows[True],
    }


def bench_long_trace(records: int, rounds: int) -> Dict:
    """Long-trace serialization round trip, vectorized reader on vs off.

    The round-trip identity check (byte stream and reread requests equal
    between modes) runs once, outside the timed rounds, so the timed
    passes never hold another mode's 10^5-object reread alive — the
    garbage collector's traversals scale with the live-object population,
    and an extra reread in memory taxes whichever mode runs second.
    Timed like the grid: modes interleave within each round, CPU seconds
    are primary, each mode's reread is dropped before the next mode runs.
    The realistic speedup ceiling is low — deserialization's floor is one
    Python object per record, and the writer is scalar in both modes —
    and the medians recorded here are honest measurements, not targets.
    """
    requests = TraceGenerator(get_profile(GRID_APPS[0]),
                              seed=GRID_SEED).generate_list(records)
    blobs: Dict[bool, bytes] = {}
    rereads: Dict[bool, List] = {}
    for vec in (False, True):
        with vectorized(vec):
            buffer = io.BytesIO()
            write_trace(requests, buffer)
            buffer.seek(0)
            rereads[vec] = read_trace_list(buffer)
            blobs[vec] = buffer.getvalue()
    identical = (blobs[False] == blobs[True]
                 and rereads[False] == rereads[True]
                 and rereads[True] == requests)
    del blobs, rereads
    round_records = []
    for _ in range(rounds):
        cpu: Dict[str, float] = {}
        for label, vec in (("reference", False), ("vectorized", True)):
            with vectorized(vec):
                cpu0 = time.process_time()
                buffer = io.BytesIO()
                write_trace(requests, buffer)
                buffer.seek(0)
                reread = read_trace_list(buffer)
                cpu[label] = time.process_time() - cpu0
            assert len(reread) == records
            del reread, buffer
        round_records.append({
            "reference_cpu_s": cpu["reference"],
            "vectorized_cpu_s": cpu["vectorized"],
            "cpu_speedup": (cpu["reference"] / cpu["vectorized"]
                            if cpu["vectorized"] > 0 else 0.0),
        })
    return {
        "app": GRID_APPS[0],
        "records": records,
        "rounds": round_records,
        "median_cpu_speedup": statistics.median(
            r["cpu_speedup"] for r in round_records),
        "roundtrip_identical": identical,
    }


# ----------------------------------------------------------------------
# Streaming capture memory footprint
# ----------------------------------------------------------------------

#: Child script timed/measured in a fresh interpreter so ``ru_maxrss``
#: reflects exactly one capture strategy.  ``mode`` is "streaming"
#: (generator straight into the chunked v2 writer) or "materialized"
#: (full request list built first, as the pre-v2 path had to).
_CAPTURE_CHILD = """
import json, resource, sys, time
mode, records, out, src = (sys.argv[1], int(sys.argv[2]), sys.argv[3],
                           sys.argv[4])
sys.path.insert(0, src)
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import capture_trace

gen = TraceGenerator("gcc", seed=7)
wall0 = time.perf_counter()
if mode == "streaming":
    count = capture_trace(gen.generate(records), out)
else:
    requests = gen.generate_list(records)
    count = capture_trace(iter(requests), out)
wall = time.perf_counter() - wall0
peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"count": count, "wall_s": wall,
                  "peak_rss_kib": peak_kib}))
"""


def bench_streaming_capture(records: int) -> Dict:
    """Peak-RSS contrast of streaming vs materialized trace capture.

    Each strategy runs in its own subprocess and reports
    ``ru_maxrss`` — the whole point of the chunked v2 writer is that a
    capture's footprint is bounded by the chunk size, not the trace
    length, so the streaming child's peak should stay near the
    interpreter baseline while the materialized child's grows with
    ``records``.  Numbers are **report-only** (RSS depends on allocator
    and platform); the correctness gate for the capture path lives in
    ``trace_resume_smoke.py`` and the crash tests.
    """
    import subprocess
    import tempfile

    src = str(Path(__file__).resolve().parent.parent / "src")
    out: Dict = {"records": records}
    with tempfile.TemporaryDirectory() as tmp:
        for mode in ("streaming", "materialized"):
            proc = subprocess.run(
                [sys.executable, "-c", _CAPTURE_CHILD, mode, str(records),
                 f"{tmp}/{mode}.esdtrace", src],
                capture_output=True, text=True, timeout=600)
            if proc.returncode != 0:
                out[mode] = {"error": proc.stderr.strip()[-300:]}
                continue
            stats = json.loads(proc.stdout)
            assert stats["count"] == records
            out[mode] = stats
    if "peak_rss_kib" in out.get("streaming", {}) \
            and "peak_rss_kib" in out.get("materialized", {}):
        out["rss_ratio_materialized_over_streaming"] = (
            out["materialized"]["peak_rss_kib"]
            / max(out["streaming"]["peak_rss_kib"], 1))
    return out


# ----------------------------------------------------------------------
# Kernel micro-benchmarks
# ----------------------------------------------------------------------

def _working_set(count: int = KERNEL_DISTINCT_LINES,
                 seed: int = 0xE5D) -> List[bytes]:
    rng = random.Random(seed)
    return [rng.randbytes(CACHE_LINE_SIZE) for _ in range(count)]


def _kernel_stream(ops: int) -> List[bytes]:
    lines = _working_set()
    return [lines[i % len(lines)] for i in range(ops)]


def _bench_line_ecc(ops: int) -> Callable[[], None]:
    stream = _kernel_stream(ops)

    def run() -> None:
        for data in stream:
            line_ecc(data)
    return run


def _bench_decode_line_clean(ops: int) -> Callable[[], None]:
    stream = _kernel_stream(ops)
    # Pair every line with its correct ECC (the clean, no-fault decode that
    # dominates simulation reads); computed uncached so setup cost never
    # warms the caches under test.
    pairs = [(data, line_ecc_uncached(data)) for data in _working_set()]
    stream_pairs = [pairs[i % len(pairs)] for i in range(ops)]
    del stream

    def run() -> None:
        for data, ecc in stream_pairs:
            decode_line(data, ecc)
    return run


def _bench_counter_pad(ops: int) -> Callable[[], None]:
    key = b"\x13" * 32
    coords = [(line, 1) for line in range(KERNEL_DISTINCT_LINES)]
    stream = [coords[i % len(coords)] for i in range(ops)]

    def run() -> None:
        for line, counter in stream:
            _derive_pad(key, line, counter)
    return run


def _bench_fingerprint(name: str, ops: int) -> Callable[[], None]:
    engine = make_engine(name)
    stream = _kernel_stream(ops)

    def run() -> None:
        fingerprint = engine.fingerprint
        for data in stream:
            fingerprint(data)
    return run


def _bench_trace_roundtrip(ops: int) -> Callable[[], None]:
    profile = get_profile(GRID_APPS[0])
    requests = TraceGenerator(profile, seed=GRID_SEED).generate_list(ops)

    def run() -> None:
        buffer = io.BytesIO()
        write_trace(requests, buffer)
        buffer.seek(0)
        read_trace_list(buffer)
    return run


def _time_kernel(factory: Callable[[int], Callable[[], None]],
                 ops: int, repeats: int, enabled: bool) -> float:
    """Median ns/op over ``repeats`` runs in one fast-path mode."""
    run = factory(ops)
    samples = []
    with fastpath(enabled):
        for _ in range(repeats):
            reset_caches()
            start = time.process_time()
            run()
            samples.append((time.process_time() - start) / ops * 1e9)
    return statistics.median(samples)


def bench_kernels(ops: int, repeats: int) -> Dict[str, Dict[str, float]]:
    factories: Dict[str, Callable[[int], Callable[[], None]]] = {
        "line_ecc": _bench_line_ecc,
        "decode_line_clean": _bench_decode_line_clean,
        "counter_pad": _bench_counter_pad,
        "fingerprint_sha1": lambda n: _bench_fingerprint("sha1", n),
        "fingerprint_crc": lambda n: _bench_fingerprint("crc32", n),
        "trace_roundtrip": _bench_trace_roundtrip,
    }
    report: Dict[str, Dict[str, float]] = {}
    for name, factory in factories.items():
        off = _time_kernel(factory, ops, repeats, enabled=False)
        on = _time_kernel(factory, ops, repeats, enabled=True)
        report[name] = {
            "memo_off_ns_per_op": off,
            "memo_on_ns_per_op": on,
            "memo_speedup": off / on if on > 0 else 0.0,
        }
    return report


# ----------------------------------------------------------------------
# Serve loopback throughput
# ----------------------------------------------------------------------

def bench_serve_throughput(requests: int) -> Dict:
    """Requests/sec through the server loopback vs a direct ``run()``.

    Streams one trace through an in-process :mod:`repro.serve` server
    (NDJSON over TCP loopback, default batching/backpressure) and runs
    the identical trace directly, reporting both rates and their ratio.
    Report-only — the serving overhead (JSON codec, syscalls, queue
    hops) is an accepted cost, not a regression gate; the hard parity
    gate for the serve path lives in ``benchmarks/serve_smoke.py``.
    The single-session loopback parity boolean rides along because it
    is free to check here.
    """
    from repro.registry import make_scheme
    from repro.serve import BackgroundServer, ServeClient
    from repro.sim.engine import EngineConfig, SimulationEngine
    from repro.sim.export import result_to_state

    app, scheme_name = GRID_APPS[0], GRID_SCHEMES[-1]
    trace = TraceGenerator(get_profile(app),
                           seed=GRID_SEED).generate_list(requests)

    wall0 = time.perf_counter()
    engine = SimulationEngine(make_scheme(scheme_name,
                                          scaled_system_config()),
                              EngineConfig())
    direct = engine.run(iter(trace), app=app, total_hint=len(trace))
    direct_s = time.perf_counter() - wall0

    with BackgroundServer() as server:
        with ServeClient("127.0.0.1", server.port) as client:
            wall0 = time.perf_counter()
            payload = client.run_trace(iter(trace), scheme_name, app=app,
                                       total_hint=len(trace))
            serve_s = time.perf_counter() - wall0
    return {
        "app": app,
        "scheme": scheme_name,
        "requests": requests,
        "direct_req_per_s": requests / direct_s if direct_s > 0 else 0.0,
        "serve_req_per_s": requests / serve_s if serve_s > 0 else 0.0,
        "serve_overhead_ratio": serve_s / direct_s if direct_s > 0 else 0.0,
        "loopback_parity": payload["state"] == result_to_state(direct),
        "drained_clean": bool(server.drained_clean),
    }


# ----------------------------------------------------------------------
# Multi-process serve: roster parity + scaling
# ----------------------------------------------------------------------

#: Version of the ``serve_mp_throughput`` section's layout; bump on
#: incompatible changes so trajectory consumers can filter.
SERVE_MP_SCHEMA_VERSION = 1

#: Worker count of the parity pass (matches the CI serve-mp job).
SERVE_MP_PARITY_WORKERS = 3

#: Tenants (each pinned to a distinct worker) and pool size of the
#: scaling comparison.
SERVE_MP_TENANTS = 4


def bench_serve_mp(requests: int) -> Dict:
    """Multi-process serve back end: roster parity (gated) + scaling.

    **Parity (hard gate).**  Every registered scheme's trace is served
    through a ``workers=3`` pool, each scheme under its own tenant so
    sessions spread across workers by the affinity hash.  Sessions run
    sequentially and each worker resets its process-global caches at
    session open, so the served state must be *full* bit-exact against
    a direct run — including the memo statistics the threaded
    concurrent-parity check has to exclude.

    **Scaling (report-only).**  Four tenants pinned to four distinct
    workers stream the same trace concurrently; aggregate req/s is
    timed at ``workers=1`` (the in-process engine lock) and
    ``workers=4``.  Like every timing here the ratio is recorded, not
    gated: it only shows parallel speedup when the host actually has
    ≥ 4 free cores — on 1-2 core CI containers it honestly records the
    IPC overhead instead (``cpu_count`` rides along so trajectory
    consumers can tell which regime a point came from).
    """
    import os
    import threading

    from repro.registry import make_scheme
    from repro.serve import BackgroundServer, ServeClient, ServeConfig
    from repro.serve.pool import worker_for_tenant
    from repro.sim.engine import EngineConfig, SimulationEngine
    from repro.sim.export import result_to_state

    app = GRID_APPS[0]
    trace = TraceGenerator(get_profile(app),
                           seed=GRID_SEED).generate_list(requests)

    roster = list(registered_scheme_names())
    direct_states = {}
    for scheme in roster:
        engine = SimulationEngine(
            make_scheme(scheme, scaled_system_config()), EngineConfig())
        direct_states[scheme] = result_to_state(
            engine.run(iter(trace), app=app, total_hint=len(trace)))

    parity: Dict[str, bool] = {}
    with BackgroundServer(
            ServeConfig(workers=SERVE_MP_PARITY_WORKERS)) as server:
        for scheme in roster:
            with ServeClient("127.0.0.1", server.port) as client:
                payload = client.run_trace(
                    iter(trace), scheme, tenant=f"parity-{scheme}",
                    app=app, total_hint=len(trace))
            parity[scheme] = payload["state"] == direct_states[scheme]
    all_parity = all(parity.values()) and bool(server.drained_clean)

    def _pinned_tenant(worker: int, workers: int) -> str:
        for i in range(10_000):
            tenant = f"bench-{worker}-{i}"
            if worker_for_tenant(tenant, workers) == worker:
                return tenant
        raise AssertionError("no tenant found for worker")

    tenants = [_pinned_tenant(w, SERVE_MP_TENANTS)
               for w in range(SERVE_MP_TENANTS)]

    def _aggregate_rate(workers: int) -> float:
        errors: List[BaseException] = []
        config = ServeConfig(workers=workers,
                             max_sessions=SERVE_MP_TENANTS + 1)
        with BackgroundServer(config) as server:
            # Warm up: one tiny session per tenant, so each spawned
            # worker finishes its interpreter/import start-up before the
            # clock starts — the section measures steady-state
            # throughput, not process spawn cost.
            warmup = trace[:256]
            for tenant in tenants:
                with ServeClient("127.0.0.1", server.port) as client:
                    client.run_trace(iter(warmup), "ESD", tenant=tenant,
                                     app=app, total_hint=len(warmup))

            def _drive(tenant: str) -> None:
                try:
                    with ServeClient("127.0.0.1", server.port) as client:
                        client.run_trace(iter(trace), "ESD", tenant=tenant,
                                         app=app, total_hint=len(trace))
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=_drive, args=(tenant,))
                       for tenant in tenants]
            wall0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall0
        if errors:
            raise errors[0]
        return len(tenants) * len(trace) / wall if wall > 0 else 0.0

    rate_1 = _aggregate_rate(1)
    rate_n = _aggregate_rate(SERVE_MP_TENANTS)

    return {
        "serve_mp_schema_version": SERVE_MP_SCHEMA_VERSION,
        "app": app,
        "requests": requests,
        "parity_workers": SERVE_MP_PARITY_WORKERS,
        "roster_parity": parity,
        "mp_roster_parity": all_parity,
        "tenants": SERVE_MP_TENANTS,
        "scaling_workers": SERVE_MP_TENANTS,
        "aggregate_req_per_s_workers_1": rate_1,
        "aggregate_req_per_s_workers_n": rate_n,
        "mp_scaling_ratio": rate_n / rate_1 if rate_1 > 0 else 0.0,
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# Sweep execution/storage backend throughput
# ----------------------------------------------------------------------

#: Version of the ``sweep_throughput`` section's layout; bump on
#: incompatible changes so trajectory consumers can filter.
SWEEP_THROUGHPUT_SCHEMA_VERSION = 1

#: Every (execution backend, storage backend) pair the sweep layer
#: registers, timed against one identical grid.
SWEEP_BACKEND_PAIRS = (
    ("pool", "dir"),
    ("pool", "sqlite"),
    ("queue", "dir"),
    ("queue", "sqlite"),
)


def bench_sweep_backends(requests: int) -> Dict:
    """Jobs/sec per (execution, storage) backend pair, parity gated.

    Each pair runs the same small grid into a fresh store; throughput
    (completed jobs per wall second, cold cache) is report-only —
    fork/SQLite/lease overhead differs legitimately across pairs — but
    every pair's summary rows must be byte-identical to the serial
    reference grid, and that boolean is a hard gate.
    """
    import tempfile

    from repro.sweep import WorkQueueBackend, run_sweep

    config = ExperimentConfig(
        apps=["gcc", "lbm"], schemes=["Baseline", "ESD"],
        requests_per_app=requests, system=scaled_system_config(),
        seed=GRID_SEED)
    n_jobs = len(config.apps) * len(config.schemes)
    reference = {f"{app}/{scheme}": result.summary_row()
                 for (app, scheme), result in run_grid(config).items()}

    pairs: Dict[str, Dict] = {}
    all_identical = True
    for backend_name, storage_name in SWEEP_BACKEND_PAIRS:
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-sweep-") as tmp:
            spec = (f"{tmp}/store.sqlite" if storage_name == "sqlite"
                    else f"{tmp}/store")
            backend = (WorkQueueBackend(lease_s=15.0, poll_s=0.05)
                       if backend_name == "queue" else backend_name)
            wall0 = time.perf_counter()
            grid = run_sweep(config, jobs=2, store=spec, backend=backend,
                             storage=storage_name)
            wall = time.perf_counter() - wall0
        rows = {f"{app}/{scheme}": result.summary_row()
                for (app, scheme), result in grid.items()}
        identical = rows == reference
        all_identical = all_identical and identical
        pairs[f"{backend_name}/{storage_name}"] = {
            "wall_s": wall,
            "jobs_per_s": n_jobs / wall if wall > 0 else 0.0,
            "identical": identical,
        }
    return {
        "sweep_throughput_schema_version": SWEEP_THROUGHPUT_SCHEMA_VERSION,
        "apps": list(config.apps),
        "schemes": list(config.schemes),
        "requests_per_app": requests,
        "jobs": 2,
        "total_jobs": n_jobs,
        "pairs": pairs,
        "all_identical": all_identical,
    }


# ----------------------------------------------------------------------
# Benchmark history trajectory
# ----------------------------------------------------------------------

#: Version of one BENCH_history.json entry's layout; bump on
#: incompatible changes so trajectory consumers can filter.
#: v2: adds the sweep backend-pair throughput fields.
#: v3: adds the multi-process serve fields (parity gate, aggregate
#: req/s at workers=1 vs workers=N, scaling ratio, cpu_count).
#: v4: adds the streaming-capture peak-RSS fields (report-only).
HISTORY_SCHEMA_VERSION = 4


def history_entry(report: Dict) -> Dict:
    """One compact trajectory point distilled from a full report.

    The full report overwrites ``BENCH_perf_smoke.json`` every run; the
    history file *appends*, so entries carry only the headline medians
    and gate booleans — enough to plot the performance trajectory
    across commits without the file growing by the full report each
    time.
    """
    grid = report["grid"]
    return {
        "history_schema_version": HISTORY_SCHEMA_VERSION,
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": report["quick"],
        "requests_per_app": grid["requests_per_app"],
        "median_cpu_speedup": grid["median_cpu_speedup"],
        "median_memo_cpu_speedup": grid["median_memo_cpu_speedup"],
        "median_wall_speedup": grid["median_wall_speedup"],
        "long_trace_median_cpu_speedup":
            report["long_trace"]["median_cpu_speedup"],
        "streaming_capture_peak_rss_kib":
            report["streaming_capture"].get("streaming", {}).get(
                "peak_rss_kib"),
        "materialized_capture_peak_rss_kib":
            report["streaming_capture"].get("materialized", {}).get(
                "peak_rss_kib"),
        "serve_req_per_s": report["serve_throughput"]["serve_req_per_s"],
        "serve_overhead_ratio":
            report["serve_throughput"]["serve_overhead_ratio"],
        "serve_mp_req_per_s_workers_1":
            report["serve_mp_throughput"]["aggregate_req_per_s_workers_1"],
        "serve_mp_req_per_s_workers_n":
            report["serve_mp_throughput"]["aggregate_req_per_s_workers_n"],
        "serve_mp_scaling_ratio":
            report["serve_mp_throughput"]["mp_scaling_ratio"],
        "serve_mp_cpu_count": report["serve_mp_throughput"]["cpu_count"],
        "sweep_jobs_per_s": {
            pair: stats["jobs_per_s"]
            for pair, stats in report["sweep_throughput"]["pairs"].items()},
        "grids_identical": grid["grids_identical"],
        "roster_identical": report["roster_parity"]["identical"],
        "loopback_parity":
            report["serve_throughput"]["loopback_parity"],
        "serve_mp_roster_parity":
            report["serve_mp_throughput"]["mp_roster_parity"],
        "sweep_backends_identical":
            report["sweep_throughput"]["all_identical"],
        "platform": report["platform"],
        "python": report["python"],
    }


def append_history(report: Dict, path: Path) -> int:
    """Append this run's entry to the trajectory file; returns its length.

    The file is a JSON array.  A missing or unreadable file starts a
    fresh trajectory rather than failing the benchmark.
    """
    entries: List[Dict] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                entries = loaded
        except (OSError, ValueError):
            entries = []
    entries.append(history_entry(report))
    path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    return len(entries)


# ----------------------------------------------------------------------
# Observability metrics report
# ----------------------------------------------------------------------

def emit_metrics_report(requests: int, path: Path) -> None:
    """Run one observed grid cell and write its metrics report.

    The report (``repro.obs`` registry snapshot plus trace-ring stats) is
    a CI artifact: it documents the migrated ``memo_*`` counters and the
    request-latency histograms for the benchmark configuration.  It is
    informational — the only hard gate stays ``grids_identical``.
    """
    from repro.sim.runner import run_app

    system = scaled_system_config().with_observability(enabled=True)
    app, scheme = GRID_APPS[0], GRID_SCHEMES[-1]
    result = run_app(app, [scheme], requests=requests, system=system,
                     seed=GRID_SEED)[scheme]
    assert result.obs is not None
    report = {"app": app, "scheme": scheme, "requests": requests,
              "obs_schema_version": result.obs["obs_schema_version"],
              "metrics": result.obs["metrics"],
              "trace_stats": result.obs["trace_stats"]}
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fast-path perf smoke: grid timing, kernel micro-"
                    "benchmarks, and the off/on summary-row parity gate.")
    parser.add_argument("--quick", action="store_true",
                        help="CI sizing: 2000 requests/app, 1 grid round")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override requests per app")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override interleaved grid timing rounds")
    parser.add_argument("--metrics-report", type=Path, default=None,
                        help="also run one observed cell and write its "
                             "repro.obs metrics report here")
    parser.add_argument("--history", type=Path, default=None,
                        help="append a compact trajectory entry to this "
                             "JSON-array file (default: BENCH_history.json "
                             "next to --output; omit --output to skip)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the trajectory append entirely")
    args = parser.parse_args(argv)

    requests = args.requests or (2000 if args.quick else 8000)
    rounds = args.rounds or (1 if args.quick else 5)
    kernel_ops = 2000 if args.quick else 20000
    kernel_repeats = 3 if args.quick else 5
    trace_records = 20000 if args.quick else 200000
    roster_requests = min(requests, 2000)

    sweep_requests = min(requests, 1000 if args.quick else 2000)

    # The ISSUE's bounded-memory demonstration wants >= 200k records even
    # in quick mode; the subprocess pair costs a few seconds, not minutes.
    capture_records = max(trace_records, 200_000)

    grid = bench_grid(requests, rounds)
    roster = bench_roster_parity(roster_requests)
    long_trace = bench_long_trace(trace_records, max(rounds, 3))
    streaming_capture = bench_streaming_capture(capture_records)
    kernels = bench_kernels(kernel_ops, kernel_repeats)
    serve = bench_serve_throughput(roster_requests)
    serve_mp = bench_serve_mp(min(roster_requests,
                                  1500 if args.quick else 2000))
    sweep = bench_sweep_backends(sweep_requests)

    report = {
        "benchmark": "simulator-performance",
        "grid": grid,
        "roster_parity": roster,
        "long_trace": long_trace,
        "streaming_capture": streaming_capture,
        "kernels": kernels,
        "serve_throughput": serve,
        "serve_mp_throughput": serve_mp,
        "sweep_throughput": sweep,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "quick": bool(args.quick),
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    history_path = args.history
    if history_path is None and args.output is not None:
        history_path = args.output.parent / "BENCH_history.json"
    if history_path is not None and not args.no_history:
        length = append_history(report, history_path)
        print(f"appended entry {length} to {history_path}")
    if args.metrics_report is not None:
        emit_metrics_report(requests, args.metrics_report)
        print(f"wrote {args.metrics_report}")
    print(f"grid: median cpu speedup vec {grid['median_cpu_speedup']:.2f}x "
          f"/ memo {grid['median_memo_cpu_speedup']:.2f}x, "
          f"identical={grid['grids_identical']}; "
          f"roster identical={roster['identical']}; "
          f"long-trace {long_trace['median_cpu_speedup']:.2f}x, "
          f"identical={long_trace['roundtrip_identical']}; "
          f"serve {serve['serve_req_per_s']:.0f} req/s "
          f"({serve['serve_overhead_ratio']:.2f}x direct), "
          f"parity={serve['loopback_parity']}; "
          f"serve-mp {serve_mp['mp_scaling_ratio']:.2f}x aggregate at "
          f"{serve_mp['scaling_workers']} workers "
          f"(cpus={serve_mp['cpu_count']}), "
          f"roster parity={serve_mp['mp_roster_parity']}; "
          f"sweep backends identical={sweep['all_identical']}; "
          f"capture peak RSS streaming "
          f"{streaming_capture.get('streaming', {}).get('peak_rss_kib', '?')}"
          f" KiB vs materialized "
          f"{streaming_capture.get('materialized', {}).get('peak_rss_kib', '?')}"
          f" KiB over {streaming_capture['records']} records (report-only)",
          file=sys.stderr)
    failed = False
    if not grid["grids_identical"]:
        print("FAIL: a fast-path grid diverges from the reference grid",
              file=sys.stderr)
        failed = True
    if not roster["identical"]:
        print("FAIL: full-roster summary rows diverge vectorized on vs off",
              file=sys.stderr)
        failed = True
    if not long_trace["roundtrip_identical"]:
        print("FAIL: long-trace round trip not identical between modes",
              file=sys.stderr)
        failed = True
    if not sweep["all_identical"]:
        diverged = [pair for pair, stats in sweep["pairs"].items()
                    if not stats["identical"]]
        print(f"FAIL: sweep backend pair(s) diverge from the serial "
              f"reference: {', '.join(diverged)}", file=sys.stderr)
        failed = True
    if not serve_mp["mp_roster_parity"]:
        diverged = [scheme for scheme, ok
                    in serve_mp["roster_parity"].items() if not ok]
        print(f"FAIL: multi-process serve diverges from direct runs "
              f"for: {', '.join(diverged) or 'drain'}", file=sys.stderr)
        failed = True
    return 2 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
