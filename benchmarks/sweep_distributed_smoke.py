#!/usr/bin/env python3
"""CI smoke gate for the distributed sweep path (queue backend + SQLite).

Runs the same small experiment grid twice:

* **Reference** — the serial pool path (``jobs=1``) into a directory
  store: the byte-exact baseline every other execution mode is judged
  against.
* **Distributed** — the lease-based work-queue backend into a single
  SQLite store, with three local worker processes — one of which is
  SIGKILLed mid-sweep by a watcher thread the moment the first result
  lands.  The killed worker's lease must expire, its job must be
  reclaimed and rerun, and the final grid must come out byte-identical
  anyway.

Hard gates (exit 2 on violation):

* Every cell's summary row from the distributed run is byte-identical
  to the serial reference (JSON text compare, sort_keys).
* The SIGKILL actually happened (a smoke run that never killed anything
  proves nothing) and at least one lease reclaim or worker respawn was
  recorded — the fault path genuinely executed.

Usage::

    PYTHONPATH=src python benchmarks/sweep_distributed_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(REPO / "src"))

from repro.common.config import small_test_config
from repro.sim.runner import ExperimentConfig
from repro.sweep import WorkQueueBackend, open_store, run_sweep

APPS = ("gcc", "lbm", "mcf", "xalancbmk")
SCHEMES = ("Baseline", "ESD")
REQUESTS = 1200
SEED = 17
WORKERS = 3
LEASE_S = 2.0


def experiment() -> ExperimentConfig:
    return ExperimentConfig(apps=list(APPS), schemes=list(SCHEMES),
                            requests_per_app=REQUESTS,
                            system=small_test_config(), seed=SEED)


def summary_rows(grid) -> str:
    rows = {f"{app}/{scheme}": result.summary_row()
            for (app, scheme), result in grid.items()}
    return json.dumps(rows, sort_keys=True)


class WorkerKiller(threading.Thread):
    """SIGKILL one local worker as soon as the first result is stored."""

    def __init__(self, backend: WorkQueueBackend, store_spec: str) -> None:
        super().__init__(daemon=True)
        self.backend = backend
        self.store_spec = store_spec
        self.killed_pid = None

    def run(self) -> None:
        store = open_store(self.store_spec)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if store.completions():
                    for proc in self.backend.processes:
                        if proc.is_alive() and proc.pid is not None:
                            os.kill(proc.pid, signal.SIGKILL)
                            self.killed_pid = proc.pid
                            return
                time.sleep(0.05)
        finally:
            store.close()


def main() -> int:
    tmp = Path(os.environ.get("SWEEP_SMOKE_DIR", "/tmp")) \
        / f"sweep-distributed-smoke-{os.getpid()}"
    tmp.mkdir(parents=True, exist_ok=True)
    config = experiment()

    print("[smoke] serial reference (pool backend, dir storage)...",
          file=sys.stderr)
    serial = run_sweep(config, jobs=1, store=str(tmp / "reference"))
    reference = summary_rows(serial)

    print(f"[smoke] distributed run (queue backend, sqlite storage, "
          f"{WORKERS} workers, one SIGKILLed mid-run)...", file=sys.stderr)
    store_spec = f"sqlite://{tmp / 'distributed.sqlite'}"
    backend = WorkQueueBackend(lease_s=LEASE_S, poll_s=0.1)
    killer = WorkerKiller(backend, store_spec)
    killer.start()
    distributed = run_sweep(config, jobs=WORKERS, store=store_spec,
                            backend=backend)
    killer.join(timeout=5.0)

    store = open_store(store_spec)
    reclaims = store.reclaim_count()
    manifest = store.read_manifest()
    store.close()
    flat = (manifest or {}).get("obs", {}).get("flat", {})
    respawns = int(flat.get("sweep_worker_respawns_total", 0))
    workers_seen = sorted(k.split('"')[1] for k in flat
                          if k.startswith("sweep_jobs_completed_total{"))

    identical = summary_rows(distributed) == reference
    print(f"[smoke] killed pid={killer.killed_pid} reclaims={reclaims} "
          f"respawns={respawns} workers={len(workers_seen)} "
          f"identical={identical}", file=sys.stderr)

    failed = False
    if killer.killed_pid is None:
        print("FAIL: no worker was killed — the fault path never ran",
              file=sys.stderr)
        failed = True
    if reclaims < 1 and respawns < 1:
        print("FAIL: neither a lease reclaim nor a worker respawn was "
              "recorded after the SIGKILL", file=sys.stderr)
        failed = True
    if not identical:
        print("FAIL: distributed summary rows diverge from the serial "
              "reference", file=sys.stderr)
        failed = True
    if not failed:
        print(f"[smoke] OK: {len(distributed)} cells byte-identical to "
              f"serial after killing worker {killer.killed_pid}",
              file=sys.stderr)
    return 2 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
