"""Figure 15: CDFs of write latency (tail latency) for 8 applications.

Paper: ESD's write-latency CDF sits left of DeWrite's and far left of
Dedup_SHA1's for gcc, leela, bodytrack, dedup, facesim, fluidanimate,
wrf, and x264.
"""

from repro.analysis.experiments import fig15_tail_latency
from repro.workloads.profiles import TAIL_LATENCY_APPS


def test_fig15_tail_latency(benchmark, emit):
    result = benchmark.pedantic(
        fig15_tail_latency,
        kwargs={"apps": list(TAIL_LATENCY_APPS), "requests": 15_000},
        rounds=1, iterations=1)
    emit("fig15_tail_latency", result.render())
    # ESD has the shortest tail on every plotted application.
    for app in TAIL_LATENCY_APPS:
        p99 = result.p99[app]
        assert p99["ESD"] <= p99["Dedup_SHA1"]
        assert p99["ESD"] <= p99["DeWrite"]
    # CDFs are valid distributions.
    for app, per in result.cdfs.items():
        for scheme, (xs, ys) in per.items():
            assert ys == sorted(ys)
            assert 0.0 <= ys[-1] <= 1.0 + 1e-9
