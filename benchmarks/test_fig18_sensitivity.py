"""Figure 18: EFIT/AMT cache-size sensitivity, with and without LRCU.

Paper: hit rates rise with cache size and saturate (knee at 512 KB against
billion-request footprints; proportionally smaller here), and the LRCU
policy beats plain LRU at every size.
"""

from repro.analysis.experiments import fig18_cache_sensitivity
from repro.common.units import kib


def test_fig18_cache_sensitivity(benchmark, emit):
    result = benchmark.pedantic(
        fig18_cache_sensitivity,
        kwargs={
            "app": "gcc",
            "requests": 15_000,
            "efit_sizes": [kib(2), kib(4), kib(8), kib(16), kib(32), kib(64)],
            "amt_sizes": [kib(8), kib(16), kib(32), kib(64), kib(128)],
        },
        rounds=1, iterations=1)
    emit("fig18_sensitivity", result.render())

    lrcu = [r for _, r, _ in result.efit_series]
    no_lrcu = [r for _, _, r in result.efit_series]
    # Hit rate grows with EFIT size...
    assert lrcu == sorted(lrcu)
    # ...and saturates: the last doubling adds less than the first.
    first_gain = lrcu[1] - lrcu[0]
    last_gain = lrcu[-1] - lrcu[-2]
    assert last_gain <= first_gain + 0.02
    # LRCU >= plain LRU at every size (ties allowed when unpressured).
    for with_l, without_l in zip(lrcu, no_lrcu):
        assert with_l >= without_l - 0.02

    amt = [r for _, r in result.amt_series]
    assert amt[-1] >= amt[0]
