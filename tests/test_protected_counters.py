"""Tests for the protect_counters pipeline option (Section III-E)."""

import dataclasses

import pytest

from repro.common import small_test_config
from repro.common.errors import IntegrityError
from repro.common.timeline import StageTimeline
from repro.dedup import EXTENDED_SCHEME_NAMES, make_scheme
from repro.sim import SimulationEngine
from repro.workloads import TraceGenerator


@pytest.fixture
def protected_config():
    return dataclasses.replace(small_test_config(), protect_counters=True)


class TestProtectedPipeline:
    @pytest.mark.parametrize("scheme_name", list(EXTENDED_SCHEME_NAMES))
    def test_every_scheme_runs_clean_with_protection(self, protected_config,
                                                     scheme_name):
        trace = TraceGenerator("gcc", seed=33).generate_list(1_500)
        scheme = make_scheme(scheme_name, protected_config)
        assert scheme.integrity_tree is not None
        engine = SimulationEngine(scheme)
        engine.run(iter(trace), app="gcc", total_hint=len(trace))
        # The tree saw real traffic.
        assert scheme.integrity_tree.updates > 0
        assert scheme.integrity_tree.verifications > 0

    def test_protection_off_by_default(self, config):
        scheme = make_scheme("ESD", config)
        assert scheme.integrity_tree is None

    def test_tamper_detected_mid_run(self, protected_config):
        scheme = make_scheme("Baseline", protected_config)
        trace = TraceGenerator("gcc", seed=35).generate_list(200)
        writes = [r for r in trace if r.is_write]
        reads = [r for r in trace if r.is_read]
        for req in writes[:50]:
            scheme.handle_write(req)
        # Roll one counter back behind the tree's back.
        victim = next(iter(scheme.crypto.counters.counters))
        scheme.crypto.counters.counters[victim] += 1
        tampered_frame = victim
        # Reading any line on the tampered leaf's path must fail.
        with pytest.raises(IntegrityError):
            scheme._read_and_decrypt(tampered_frame, StageTimeline(10_000.0))

    def test_protection_adds_latency(self):
        base_cfg = small_test_config()
        prot_cfg = dataclasses.replace(base_cfg, protect_counters=True)
        trace = TraceGenerator("gcc", seed=37).generate_list(1_500)
        results = {}
        for name, cfg in (("off", base_cfg), ("on", prot_cfg)):
            engine = SimulationEngine(make_scheme("Baseline", cfg))
            results[name] = engine.run(iter(list(trace)), app="gcc",
                                       total_hint=len(trace))
        assert (results["on"].mean_write_latency_ns
                >= results["off"].mean_write_latency_ns)

    def test_integrity_and_dedup_compose(self, protected_config):
        """Dedup's remapping must not confuse counter verification."""
        trace = TraceGenerator("deepsjeng", seed=39).generate_list(2_000)
        engine = SimulationEngine(make_scheme("ESD", protected_config))
        result = engine.run(iter(trace), app="deepsjeng",
                            total_hint=len(trace))
        assert result.write_reduction > 0.9
