"""Engine-level tests for the epoch-batched (``repro.vec``) machinery.

Covers the pieces the parity suite exercises only implicitly: streaming
epoch draining, per-run :class:`VecStats` accounting and its export
through result extras and the observability registry, the
:class:`EpochPrecomputer`'s cache priming and scalar-fallback paths, the
batched trace deserializer (byte-identical round trips and identical
errors on malformed streams), and the engine/CLI control surface.
"""

import io
import random
import struct
from dataclasses import replace

import pytest

from repro.cli import main
from repro.common import small_test_config
from repro.common.config import ObservabilityConfig
from repro.common.types import AccessType, MemoryRequest, request_unchecked
from repro.crypto.fingerprints import SHA1Engine, TruncatedEngine
from repro.dedup import make_scheme
from repro.perf import memo
from repro.sim.engine import EngineConfig
from repro.sim.runner import run_app
from repro.vec import (
    begin_run,
    default_enabled,
    end_run,
    set_vectorized,
    vectorized,
    vectorized_enabled,
)
from repro.vec.epoch import (
    DEFAULT_EPOCH_SIZE,
    EpochPrecomputer,
    VecStats,
    iter_epochs,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import read_trace_list, write_trace

REQUESTS = 600


@pytest.fixture(autouse=True)
def _cold_caches():
    memo.reset_all()
    yield
    memo.reset_all()


def _write(seq, content, address=0):
    return MemoryRequest(address=address, access=AccessType.WRITE,
                         data=content, issue_time_ns=float(seq), seq=seq)


def _read(seq, address=0):
    return MemoryRequest(address=address, access=AccessType.READ,
                         issue_time_ns=float(seq), seq=seq)


class TestIterEpochs:
    def test_chunking_and_order(self):
        requests = [_read(i, address=i * 64) for i in range(10)]
        epochs = list(iter_epochs(requests, 4))
        assert [len(e) for e in epochs] == [4, 4, 2]
        assert [r.seq for epoch in epochs for r in epoch] == list(range(10))

    def test_streaming_consumes_lazily(self):
        consumed = []

        def stream():
            for i in range(10):
                consumed.append(i)
                yield _read(i, address=i * 64)

        epochs = iter_epochs(stream(), 4)
        assert consumed == []  # nothing drawn yet
        next(epochs)
        assert len(consumed) == 4  # exactly one epoch ahead

    def test_exact_multiple(self):
        requests = [_read(i, address=i * 64) for i in range(8)]
        assert [len(e) for e in iter_epochs(requests, 4)] == [4, 4]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(iter_epochs([], 0))

    def test_engine_default_matches_module_constant(self):
        assert DEFAULT_EPOCH_SIZE == 1024
        assert EngineConfig().vec_epoch_size == DEFAULT_EPOCH_SIZE


class TestVecStats:
    def test_observe_epoch_tracks_extremes(self):
        stats = VecStats()
        for size in (1024, 1024, 640):
            stats.observe_epoch(size)
        assert stats.epochs == 3
        assert stats.requests == 2688
        assert stats.min_epoch_size == 640
        assert stats.max_epoch_size == 1024

    def test_kernel_occupancy(self):
        stats = VecStats()
        assert stats.kernel_occupancy == 0.0
        stats.writes = 10
        stats.covered_writes = 7
        assert stats.kernel_occupancy == pytest.approx(0.7)

    def test_snapshot_keys(self):
        snap = VecStats().snapshot()
        assert all(k.startswith("vec_") for k in snap)
        assert "vec_epochs" in snap
        assert "vec_kernel_occupancy" in snap
        assert "vec_scalar_fallback_lines" in snap
        assert all(isinstance(v, float) for v in snap.values())


class TestEpochPrecomputer:
    def _epoch(self, contents):
        epoch = [_write(i, data, address=i * 64)
                 for i, data in enumerate(contents)]
        epoch.append(_read(len(epoch), address=0))
        return epoch

    def test_esd_priming_fills_line_ecc_cache(self):
        scheme = make_scheme("ESD", small_test_config())
        stats = VecStats()
        precomp = EpochPrecomputer(scheme, stats)
        rng = random.Random(31)
        contents = [rng.randbytes(64) for _ in range(8)]
        cache = memo.get_cache("line_ecc", 1 << 16)
        precomp.precompute(self._epoch(contents + contents[:3]))
        assert all(data in cache for data in contents)
        assert stats.writes == 11
        assert stats.unique_write_contents == 8  # duplicates deduped
        assert stats.batched_ecc_lines == 8
        assert stats.covered_writes == 11
        assert stats.scalar_fallback_lines == 0

    def test_already_cached_contents_not_recomputed(self):
        scheme = make_scheme("ESD", small_test_config())
        stats = VecStats()
        precomp = EpochPrecomputer(scheme, stats)
        contents = [random.Random(32).randbytes(64)]
        precomp.precompute(self._epoch(contents))
        precomp.precompute(self._epoch(contents))
        assert stats.batched_ecc_lines == 1  # second epoch found it cached

    def test_sha1_scheme_primes_fingerprint_cache(self):
        scheme = make_scheme("Dedup_SHA1", small_test_config())
        stats = VecStats()
        precomp = EpochPrecomputer(scheme, stats)
        rng = random.Random(33)
        contents = [rng.randbytes(64) for _ in range(5)]
        precomp.precompute(self._epoch(contents))
        assert stats.batched_fp_lines >= 5
        assert stats.covered_writes == 5

    def test_baseline_falls_back_to_scalar(self):
        scheme = make_scheme("Baseline", small_test_config())
        stats = VecStats()
        precomp = EpochPrecomputer(scheme, stats)
        rng = random.Random(34)
        contents = [rng.randbytes(64) for _ in range(4)]
        precomp.precompute(self._epoch(contents))
        assert stats.scalar_fallback_lines == 4
        assert stats.covered_writes == 0

    def test_dae_excluded_from_priming(self):
        # DaE fingerprints ciphertext (pad-dependent), so there is nothing
        # content-keyed to batch before resolution.
        scheme = make_scheme("DaE", small_test_config())
        assert scheme.vec_prime_engines() == ()

    def test_memo_off_falls_back(self):
        scheme = make_scheme("ESD", small_test_config())
        stats = VecStats()
        precomp = EpochPrecomputer(scheme, stats)
        rng = random.Random(35)
        contents = [rng.randbytes(64) for _ in range(4)]
        previous = memo.ENABLED
        memo.ENABLED = False
        try:
            precomp.precompute(self._epoch(contents))
        finally:
            memo.ENABLED = previous
        assert stats.scalar_fallback_lines == 4
        assert stats.batched_ecc_lines == 0

    def test_read_only_epoch_counts_no_writes(self):
        scheme = make_scheme("ESD", small_test_config())
        stats = VecStats()
        EpochPrecomputer(scheme, stats).precompute(
            [_read(i, address=i * 64) for i in range(6)])
        assert stats.epochs == 1
        assert stats.requests == 6
        assert stats.writes == 0


class TestPrimeBatchEngines:
    def test_sha1_prime_batch_serves_later_calls_from_cache(self):
        engine = SHA1Engine()
        rng = random.Random(36)
        contents = [rng.randbytes(64) for _ in range(6)]
        assert engine.prime_batch(contents) == 6
        cache = memo.get_cache(f"fp_{engine.name}", 1 << 16)
        hits_before = cache.hits
        values = [engine.fingerprint(d) for d in contents]
        assert cache.hits == hits_before + 6
        with vectorized(False):
            assert values == [engine.fingerprint(d) for d in contents]

    def test_truncated_engine_delegates_to_inner(self):
        engine = TruncatedEngine(SHA1Engine(), bits=128)
        rng = random.Random(37)
        contents = [rng.randbytes(64) for _ in range(3)]
        assert engine.prime_batch(contents) == 3
        assert engine.prime_batch(contents) == 0  # all cached now


class TestEngineIntegration:
    def _run(self, *, vec, system=None, engine=None, requests=REQUESTS):
        system = replace(system or small_test_config(), use_vectorized=vec)
        return run_app("gcc", ["ESD"], system=system, engine=engine,
                       requests=requests)["ESD"]

    def test_extras_exported_when_on(self):
        result = self._run(vec=True)
        assert result.extras["vectorized_enabled"] == 1.0
        assert result.extras["vec_epochs"] == 1.0  # 600 < default epoch
        assert result.extras["vec_requests"] == float(REQUESTS)
        assert result.extras["vec_kernel_occupancy"] == 1.0
        assert result.extras["vec_scalar_fallback_lines"] == 0.0

    def test_extras_absent_when_off(self):
        result = self._run(vec=False)
        assert result.extras["vectorized_enabled"] == 0.0
        assert not [k for k in result.extras if k.startswith("vec_")]

    def test_epoch_size_shapes_stats_not_results(self):
        small = self._run(vec=True,
                          engine=EngineConfig(vec_epoch_size=128))
        large = self._run(vec=True,
                          engine=EngineConfig(vec_epoch_size=4096))
        assert small.extras["vec_epochs"] == 5.0  # ceil(600 / 128)
        assert large.extras["vec_epochs"] == 1.0
        assert small.extras["vec_min_epoch_size"] == 88.0  # 600 - 4*128
        assert small.summary_row() == large.summary_row()

    def test_fallback_counted_with_fastpath_off(self):
        system = replace(small_test_config(), use_fastpath=False)
        result = self._run(vec=True, system=system)
        assert result.extras["vec_kernel_occupancy"] == 0.0
        assert result.extras["vec_scalar_fallback_lines"] == \
            result.extras["vec_writes"]

    def test_engine_config_rejects_bad_epoch_size(self):
        with pytest.raises(ValueError):
            EngineConfig(vec_epoch_size=0)

    def test_run_restores_global_switch(self):
        before = vectorized_enabled()
        self._run(vec=not before, requests=50)
        assert vectorized_enabled() is before

    def test_obs_registry_carries_vec_metrics(self):
        system = replace(
            small_test_config(), use_vectorized=True,
            observability=ObservabilityConfig(enabled=True,
                                              trace_capacity=64,
                                              sample_every=3))
        result = run_app("gcc", ["ESD"], system=system,
                         requests=REQUESTS)["ESD"]
        rows = {row["name"]: row for row in result.obs["metrics"]}
        assert rows["vec_epochs"]["type"] == "counter"
        assert rows["vec_kernel_occupancy"]["type"] == "gauge"
        assert rows["vec_epoch_size"]["type"] == "histogram"
        assert rows["vec_epoch_size"]["count"] == \
            result.extras["vec_epochs"]


class TestControlSurface:
    def test_begin_run_override_and_restore(self):
        baseline = vectorized_enabled()
        previous, active = begin_run(override=not baseline)
        assert previous is baseline
        assert active is (not baseline)
        assert vectorized_enabled() is active
        end_run(previous)
        assert vectorized_enabled() is baseline

    def test_begin_run_defers_to_default(self):
        set_vectorized(not default_enabled())
        try:
            previous, active = begin_run(override=None)
            assert active is default_enabled()
            end_run(previous)
        finally:
            set_vectorized(default_enabled())


class TestVectorizedTraceIO:
    def _requests(self, count=800):
        return TraceGenerator("gcc", seed=9).generate_list(count)

    def test_roundtrip_byte_identical_both_modes(self):
        requests = self._requests()
        blobs = {}
        for enabled in (False, True):
            with vectorized(enabled):
                buffer = io.BytesIO()
                write_trace(requests, buffer)
                blobs[enabled] = buffer.getvalue()
                buffer.seek(0)
                assert read_trace_list(buffer) == requests
        assert blobs[False] == blobs[True]

    def test_cross_mode_roundtrip(self):
        requests = self._requests(200)
        buffer = io.BytesIO()
        with vectorized(False):
            write_trace(requests, buffer)
        buffer.seek(0)
        with vectorized(True):
            assert read_trace_list(buffer) == requests

    def _blob(self, requests, version=2):
        buffer = io.BytesIO()
        write_trace(requests, buffer, version=version)
        return buffer.getvalue()

    def _error(self, payload):
        outcomes = []
        for enabled in (False, True):
            with vectorized(enabled):
                try:
                    read_trace_list(io.BytesIO(payload))
                    outcomes.append(None)
                except Exception as exc:  # noqa: BLE001 - parity capture
                    outcomes.append((type(exc), str(exc)))
        return outcomes

    def test_error_parity_truncated_payload(self):
        blob = self._blob(self._requests(50))
        ref, vec = self._error(blob[:-10])
        assert ref == vec and ref is not None
        assert "truncated" in ref[1]

    def test_error_parity_unknown_kind(self):
        # Pinned to v1: the poked offsets assume the flat record layout.
        blob = bytearray(self._blob(self._requests(50), version=1))
        blob[20] = 9  # first record's kind byte (header is 20 bytes)
        ref, vec = self._error(bytes(blob))
        assert ref == vec and ref is not None
        assert "unknown record kind 9" in ref[1]

    def test_error_parity_misaligned_address(self):
        # Pinned to v1: the poked offsets assume the flat record layout.
        blob = bytearray(self._blob(self._requests(50), version=1))
        struct.pack_into("<Q", blob, 20 + 8, 65)  # unaligned address
        ref, vec = self._error(bytes(blob))
        assert ref == vec and ref is not None
        assert ref[0] is ValueError

    def test_empty_trace(self):
        for enabled in (False, True):
            with vectorized(enabled):
                buffer = io.BytesIO()
                assert write_trace([], buffer) == 0
                buffer.seek(0)
                assert read_trace_list(buffer) == []


class TestRequestUnchecked:
    def test_equals_validated_constructor(self):
        data = bytes(range(64))
        checked = MemoryRequest(address=128, access=AccessType.WRITE,
                                data=data, issue_time_ns=5.0, core=1, seq=7)
        trusted = request_unchecked(128, AccessType.WRITE, data, 5.0, 1, 7)
        assert trusted == checked
        assert trusted.is_write and trusted.line_index == 2

    def test_read_request(self):
        trusted = request_unchecked(0, AccessType.READ, None, 0.0, 0, 0)
        assert trusted == MemoryRequest(address=0, access=AccessType.READ)


class TestCliFlag:
    @staticmethod
    def _simulated(out):
        # Keep only the simulated statistics: host-side accounting (memo
        # cache traffic, vec epoch stats, the mode flags themselves)
        # legitimately differs between modes and across warm caches.
        return [line for line in out.splitlines()
                if not any(tag in line
                           for tag in ("memo_", "vec", "fastpath"))]

    def test_no_vectorized_flag_matches_default(self, capsys):
        argv = ["run", "--scheme", "ESD", "--app", "gcc",
                "--requests", "400"]
        assert main(argv) == 0
        default_out = self._simulated(capsys.readouterr().out)
        memo.reset_all()
        assert main(argv + ["--no-vectorized"]) == 0
        assert self._simulated(capsys.readouterr().out) == default_out
        assert default_out  # the filter must leave the statistics table
