"""Vectorized-engine parity: batch on vs off must be bit-exact.

The :mod:`repro.vec` epoch-batched engine carries the same contract as
the memo fast path (DESIGN.md §10): for every registered scheme, the
``SimulationResult`` summary row must be **byte-identical** with
``use_vectorized`` on or off.  Property-style random request streams —
duplicate-rich and duplicate-free contents, read- and write-heavy mixes,
short and epoch-straddling lengths — exercise the epoch front end against
the scalar loops, and a fault-injection section checks that batch-primed
ECC caches can never mask a corrupted line.
"""

import random
from dataclasses import replace

import pytest

from repro.common.errors import UncorrectableError
from repro.common.types import AccessType, MemoryRequest
from repro.ecc.codec import (
    decode_line,
    decode_line_uncached,
    line_ecc,
    line_ecc_uncached,
    prime_line_ecc_batch,
)
from repro.ecc.faults import flip_bit, flip_bits
from repro.perf import memo
from repro.registry import registered_scheme_names
from repro.sim.runner import run_app, scaled_system_config
from repro.vec import vectorized
from repro.workloads.generator import TraceGenerator

REQUESTS = 600


@pytest.fixture(autouse=True)
def _cold_caches():
    memo.reset_all()
    yield
    memo.reset_all()


def _random_trace(seed, count, write_frac=0.6, dup_rate=0.5, pool=24,
                  address_lines=512):
    """A random request stream with controlled duplicate and write rates.

    ``dup_rate`` of the writes draw from a small content pool (dedup
    hits — including re-writes of identical content), the rest carry
    fresh random lines (misses); reads revisit previously-touched
    addresses.  Deterministic in ``seed``.
    """
    rng = random.Random(seed)
    contents = [rng.randbytes(64) for _ in range(pool)]
    requests = []
    for seq in range(count):
        address = rng.randrange(address_lines) * 64
        if rng.random() < write_frac:
            if rng.random() < dup_rate:
                data = rng.choice(contents)
            else:
                data = rng.randbytes(64)
            requests.append(MemoryRequest(address=address,
                                          access=AccessType.WRITE,
                                          data=data,
                                          issue_time_ns=float(seq),
                                          seq=seq))
        else:
            requests.append(MemoryRequest(address=address,
                                          access=AccessType.READ,
                                          issue_time_ns=float(seq),
                                          seq=seq))
    return requests


def _rows(trace, schemes, *, vec, fastpath=True, system=None):
    system = replace(system or scaled_system_config(),
                     use_fastpath=fastpath, use_vectorized=vec)
    results = run_app("gcc", schemes, system=system, trace=trace)
    return {name: r.summary_row() for name, r in results.items()}


class TestAllSchemesParity:
    """Bit-exact summary rows for every registered scheme."""

    def test_generated_trace_all_schemes(self):
        trace = TraceGenerator("gcc", seed=7).generate_list(REQUESTS)
        schemes = registered_scheme_names()
        off = _rows(trace, schemes, vec=False)
        on = _rows(trace, schemes, vec=True)
        assert set(off) == set(schemes) and len(schemes) == 8
        assert off == on

    def test_random_mixed_trace_all_schemes(self):
        trace = _random_trace(seed=11, count=REQUESTS)
        schemes = registered_scheme_names()
        assert _rows(trace, schemes, vec=False) == \
            _rows(trace, schemes, vec=True)


class TestPropertyStyleMixes:
    """Randomized read/write and duplicate-rate mixes, subset of schemes
    (the full roster runs above; these vary the stream shape)."""

    SCHEMES = ["ESD", "Dedup_SHA1", "Baseline", "DaE"]

    @pytest.mark.parametrize("seed,write_frac,dup_rate", [
        (1, 0.95, 0.9),   # write-heavy, duplicate-rich
        (2, 0.95, 0.0),   # write-heavy, all-unique contents
        (3, 0.10, 0.5),   # read-heavy
        (4, 0.50, 0.5),   # balanced
    ])
    def test_random_mix_parity(self, seed, write_frac, dup_rate):
        trace = _random_trace(seed=seed, count=400, write_frac=write_frac,
                              dup_rate=dup_rate)
        assert _rows(trace, self.SCHEMES, vec=False) == \
            _rows(trace, self.SCHEMES, vec=True)

    @pytest.mark.parametrize("count", [1, 3, 1023, 1024, 1025])
    def test_epoch_boundary_lengths(self, count):
        # Streams shorter than, equal to, and one past the default epoch.
        trace = _random_trace(seed=5, count=count)
        assert _rows(trace, ["ESD"], vec=False) == \
            _rows(trace, ["ESD"], vec=True)

    def test_parity_with_fastpath_off(self):
        # vec on + memo off: every epoch falls back to scalar kernels and
        # must still match the reference loop bit-for-bit.
        trace = _random_trace(seed=6, count=400)
        assert _rows(trace, self.SCHEMES, vec=True, fastpath=False) == \
            _rows(trace, self.SCHEMES, vec=False, fastpath=False)


class TestBatchPrimingNeverMasksFaults:
    """Epoch priming fills the ``line_ecc`` cache ahead of resolution; a
    fault-injected line must still decode exactly like the uncached
    codec — the caches are keyed on content (and ``(data, ecc)`` for
    decode), so priming can never alias a corrupted line."""

    def test_primed_cache_then_single_bit_faults(self):
        rng = random.Random(21)
        lines = [rng.randbytes(64) for _ in range(16)]
        assert prime_line_ecc_batch(lines) == len(lines)
        for data in lines:
            ecc = line_ecc(data)
            assert ecc == line_ecc_uncached(data)
            corrupt = flip_bit(data, rng.randrange(512))
            got = decode_line(corrupt, ecc)
            want = decode_line_uncached(corrupt, ecc)
            assert got.data == want.data == data
            assert got.corrected_words == want.corrected_words

    def test_primed_cache_then_double_bit_fault_raises(self):
        rng = random.Random(22)
        data = rng.randbytes(64)
        prime_line_ecc_batch([data])
        ecc = line_ecc(data)
        word = 3
        corrupt = flip_bits(data, [word * 64 + 2, word * 64 + 33])
        with pytest.raises(UncorrectableError):
            decode_line(corrupt, ecc)
        with pytest.raises(UncorrectableError):
            decode_line_uncached(corrupt, ecc)

    def test_faulty_epoch_ecc_values_stay_distinct(self):
        # Batch-priming a corrupted line caches *its* (correct) ECC under
        # *its* content — never the clean line's.
        rng = random.Random(23)
        data = rng.randbytes(64)
        corrupt = flip_bit(data, 100)
        prime_line_ecc_batch([data, corrupt])
        assert line_ecc(data) == line_ecc_uncached(data)
        assert line_ecc(corrupt) == line_ecc_uncached(corrupt)
        assert line_ecc(data) != line_ecc(corrupt)

    def test_priming_noop_with_fastpath_off(self):
        rng = random.Random(24)
        lines = [rng.randbytes(64) for _ in range(4)]
        previous = memo.ENABLED
        memo.ENABLED = False
        try:
            assert prime_line_ecc_batch(lines) == 0
        finally:
            memo.ENABLED = previous


class TestContextManagerScope:
    def test_vectorized_context_restores_state(self):
        from repro.vec import vectorized_enabled
        before = vectorized_enabled()
        with vectorized(not before):
            assert vectorized_enabled() is (not before)
        assert vectorized_enabled() is before
