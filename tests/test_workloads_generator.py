"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.common.types import CACHE_LINE_SIZE, AccessType
from repro.workloads.analysis import duplicate_stats
from repro.workloads.generator import CPUAccessGenerator, TraceGenerator, ZipfSampler
from repro.workloads.profiles import get_profile


class TestZipfSampler:
    def test_empty_sampler_rejects(self):
        s = ZipfSampler(1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            s.sample()

    def test_add_returns_index(self):
        s = ZipfSampler(1.0, np.random.default_rng(0))
        assert s.add_item() == 0
        assert s.add_item() == 1
        assert len(s) == 2

    def test_skew_favours_early_items(self):
        rng = np.random.default_rng(0)
        s = ZipfSampler(1.2, rng)
        for _ in range(100):
            s.add_item()
        draws = [s.sample() for _ in range(5000)]
        first_half = sum(1 for d in draws if d < 50)
        assert first_half > len(draws) * 0.6

    def test_invalid_skew(self):
        with pytest.raises(ValueError):
            ZipfSampler(0.0, np.random.default_rng(0))


class TestTraceGenerator:
    def test_accepts_profile_name(self):
        gen = TraceGenerator("gcc")
        assert gen.profile.name == "gcc"

    def test_request_count(self):
        trace = TraceGenerator("gcc").generate_list(500)
        assert len(trace) == 500

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            TraceGenerator("gcc").generate_list(0)

    def test_requests_well_formed(self):
        for req in TraceGenerator("x264").generate_list(300):
            assert req.address % CACHE_LINE_SIZE == 0
            if req.access is AccessType.WRITE:
                assert len(req.data) == CACHE_LINE_SIZE
            else:
                assert req.data is None

    def test_issue_times_monotone(self):
        trace = TraceGenerator("gcc").generate_list(300)
        times = [r.issue_time_ns for r in trace]
        assert times == sorted(times)
        assert times[0] > 0

    def test_deterministic_with_seed(self):
        a = TraceGenerator("gcc", seed=5).generate_list(200)
        b = TraceGenerator("gcc", seed=5).generate_list(200)
        assert [(r.address, r.access, r.data) for r in a] == \
               [(r.address, r.access, r.data) for r in b]

    def test_different_seeds_differ(self):
        a = TraceGenerator("gcc", seed=5).generate_list(200)
        b = TraceGenerator("gcc", seed=6).generate_list(200)
        assert [(r.address, r.data) for r in a] != \
               [(r.address, r.data) for r in b]

    def test_different_apps_differ(self):
        a = TraceGenerator("gcc", seed=5).generate_list(100)
        b = TraceGenerator("lbm", seed=5).generate_list(100)
        assert [(r.address, r.access) for r in a] != \
               [(r.address, r.access) for r in b]

    def test_addresses_within_working_set(self):
        profile = get_profile("gcc")
        trace = TraceGenerator(profile).generate_list(1000)
        limit = profile.working_set_lines * CACHE_LINE_SIZE
        assert all(r.address < limit for r in trace)


class TestCalibratedStatistics:
    @pytest.mark.parametrize("app", ["gcc", "deepsjeng", "lbm", "namd"])
    def test_duplicate_rate_close_to_profile(self, app):
        profile = get_profile(app)
        trace = TraceGenerator(app, seed=1).generate_list(12_000)
        measured = duplicate_stats(trace).duplicate_rate
        assert abs(measured - profile.duplicate_rate) < 0.06

    def test_read_fraction_close_to_profile(self):
        profile = get_profile("gcc")
        trace = TraceGenerator("gcc", seed=1).generate_list(8_000)
        reads = sum(1 for r in trace if r.is_read)
        assert abs(reads / len(trace) - profile.read_fraction) < 0.05

    def test_zero_lines_dominate_deepsjeng_duplicates(self):
        trace = TraceGenerator("deepsjeng", seed=1).generate_list(8_000)
        stats = duplicate_stats(trace)
        assert stats.zero_share_of_duplicates > 0.7

    def test_reads_mostly_hit_written_addresses(self):
        trace = TraceGenerator("gcc", seed=1).generate_list(5_000)
        written = set()
        read_hits = reads = 0
        for req in trace:
            if req.is_write:
                written.add(req.address)
            else:
                reads += 1
                read_hits += req.address in written
        assert read_hits / reads > 0.8


class TestCPUAccessGenerator:
    def test_yields_requested_count(self):
        gen = CPUAccessGenerator("gcc", seed=2)
        accesses = list(gen.generate(500))
        assert len(accesses) == 500

    def test_rereference_creates_locality(self):
        gen = CPUAccessGenerator("gcc", seed=2)
        accesses = list(gen.generate(2000, rereference_prob=0.7))
        addresses = [a.address for a in accesses]
        assert len(set(addresses)) < len(addresses) * 0.8

    def test_validation(self):
        gen = CPUAccessGenerator("gcc")
        with pytest.raises(ValueError):
            list(gen.generate(10, rereference_prob=1.5))
