"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import bar_chart, cdf_plot, grouped_bar_chart


class TestBarChart:
    def test_basic(self):
        out = bar_chart({"ESD": 1.5, "Baseline": 1.0}, width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert "ESD" in lines[0]
        assert "1.50" in lines[0]
        # ESD's bar (max) fills the width.
        assert "#" * 10 in lines[0]

    def test_title(self):
        out = bar_chart({"a": 1.0}, title="My Chart")
        assert out.splitlines()[0] == "My Chart"

    def test_reference_marker(self):
        out = bar_chart({"x": 0.5, "y": 2.0}, width=20, reference=1.0)
        assert "|" in out or "+" in out

    def test_proportionality(self):
        out = bar_chart({"half": 0.5, "full": 1.0}, width=20)
        lines = {line.split()[0]: line for line in out.splitlines()}
        assert lines["half"].count("#") * 2 == lines["full"].count("#")

    def test_empty(self):
        assert bar_chart({}) == "(empty chart)"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0})
        assert "#" not in out

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)


class TestGroupedBarChart:
    def test_groups_rendered(self):
        out = grouped_bar_chart({
            "gcc": {"ESD": 1.3, "Baseline": 1.0},
            "lbm": {"ESD": 1.9, "Baseline": 1.0},
        }, title="Speedups")
        assert "gcc:" in out
        assert "lbm:" in out
        assert out.splitlines()[0] == "Speedups"


class TestCDFPlot:
    def test_renders_overlay(self):
        xs = [0.0, 100.0, 200.0, 400.0]
        out = cdf_plot({
            "ESD": (xs, [0.2, 0.6, 0.9, 1.0]),
            "SHA1": (xs, [0.05, 0.2, 0.5, 1.0]),
        }, title="CDF", width=30, height=8)
        assert "CDF" in out
        assert "*=ESD" in out
        assert "o=SHA1" in out
        assert "*" in out and "o" in out

    def test_empty(self):
        assert cdf_plot({}) == "(empty plot)"

    def test_size_validation(self):
        with pytest.raises(ValueError):
            cdf_plot({"a": ([1.0], [1.0])}, width=1)
