"""Tests for the three-level cache hierarchy."""

import pytest

from repro.common.config import CacheLevelConfig, ProcessorConfig
from repro.common.types import AccessType
from repro.cache.hierarchy import CacheHierarchy, CPUAccess


def tiny_processor():
    """A miniature hierarchy so evictions happen quickly."""
    return ProcessorConfig(
        cores=2,
        l1=CacheLevelConfig(name="L1", capacity_bytes=4 * 64,
                            associativity=2, latency_cycles=2),
        l2=CacheLevelConfig(name="L2", capacity_bytes=8 * 64,
                            associativity=2, latency_cycles=8),
        l3=CacheLevelConfig(name="L3", capacity_bytes=16 * 64,
                            associativity=2, latency_cycles=25),
    )


LINE = bytes(range(64))


@pytest.fixture
def hierarchy():
    return CacheHierarchy(tiny_processor())


class TestHitLevels:
    def test_cold_miss_goes_to_memory(self, hierarchy):
        ev = hierarchy.access(CPUAccess(address=0, write=False))
        assert ev.hit_level == "memory"
        assert ev.fill is not None
        assert ev.fill.access is AccessType.READ

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(CPUAccess(address=0, write=False))
        ev = hierarchy.access(CPUAccess(address=0, write=False))
        assert ev.hit_level == "L1"
        assert ev.latency_cycles == 2
        assert ev.fill is None

    def test_stats_accumulate(self, hierarchy):
        hierarchy.access(CPUAccess(address=0, write=False))
        hierarchy.access(CPUAccess(address=0, write=False))
        assert hierarchy.stats.l1_hits == 1
        assert hierarchy.stats.l1_misses == 1
        assert hierarchy.stats.fills_from_memory == 1

    def test_core_range_checked(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.access(CPUAccess(address=0, write=False, core=5))

    def test_private_l1_per_core(self, hierarchy):
        hierarchy.access(CPUAccess(address=0, write=False, core=0))
        ev = hierarchy.access(CPUAccess(address=0, write=False, core=1))
        # Core 1 misses its own L1 even though core 0 has the line.
        assert ev.hit_level != "L1"


class TestWritebackFlow:
    def test_dirty_data_eventually_reaches_memory(self, hierarchy):
        # Write many distinct lines so dirty evictions cascade L1->L2->L3->mem.
        writebacks = []
        for i in range(200):
            payload = i.to_bytes(4, "little") * 16
            ev = hierarchy.access(CPUAccess(address=i * 64, write=True,
                                            data=payload))
            writebacks.extend(ev.writebacks)
        assert writebacks, "expected dirty write-backs to memory"
        for wb in writebacks:
            assert wb.access is AccessType.WRITE
            assert wb.data is not None and len(wb.data) == 64

    def test_writeback_content_preserved(self, hierarchy):
        """The payload written by the CPU must be the payload evicted."""
        payloads = {}
        writebacks = []
        for i in range(300):
            payload = (i % 251).to_bytes(2, "little") * 32
            payloads[i * 64] = payload
            ev = hierarchy.access(CPUAccess(address=i * 64, write=True,
                                            data=payload))
            writebacks.extend(ev.writebacks)
        for wb in writebacks:
            assert wb.data == payloads[wb.address]

    def test_drain_flushes_remaining_dirty_lines(self, hierarchy):
        for i in range(10):
            hierarchy.access(CPUAccess(address=i * 64, write=True, data=LINE))
        drained = hierarchy.drain()
        # Every written line must come out exactly once over run + drain.
        assert all(wb.data == LINE for wb in drained)
        assert drained, "expected dirty lines at drain"


class TestHitRates:
    def test_hot_loop_has_high_l1_hit_rate(self, hierarchy):
        for _ in range(50):
            for addr in (0, 64):
                hierarchy.access(CPUAccess(address=addr, write=False))
        l1, _, _ = hierarchy.stats.hit_rates()
        assert l1 > 0.9

    def test_hit_rates_bounded(self, hierarchy):
        for i in range(100):
            hierarchy.access(CPUAccess(address=(i % 40) * 64, write=False))
        for rate in hierarchy.stats.hit_rates():
            assert 0.0 <= rate <= 1.0


class TestRunIterator:
    def test_run_yields_event_per_access(self, hierarchy):
        accesses = [CPUAccess(address=i * 64, write=False) for i in range(5)]
        events = list(hierarchy.run(iter(accesses)))
        assert len(events) == 5
