"""Tests for the LRCU (least-reference-count-used) cache."""

import pytest

from repro.core.lrcu import LRCUCache


class TestBasics:
    def test_put_get(self):
        c = LRCUCache(capacity=4)
        c.put("a", 1)
        assert c.get("a") == 1
        assert "a" in c
        assert len(c) == 1

    def test_get_absent(self):
        assert LRCUCache(capacity=2).get("x") is None

    def test_count_starts_at_one(self):
        c = LRCUCache(capacity=4)
        c.put("a", 1)
        assert c.count("a") == 1
        assert c.count("zz") == 0

    def test_touch_increments(self):
        c = LRCUCache(capacity=4)
        c.put("a", 1)
        assert c.touch("a") == 2
        assert c.count("a") == 2

    def test_touch_absent_raises(self):
        with pytest.raises(KeyError):
            LRCUCache(capacity=2).touch("x")

    def test_touch_saturates_at_max(self):
        c = LRCUCache(capacity=4, max_count=3)
        c.put("a", 1)
        for _ in range(10):
            c.touch("a")
        assert c.count("a") == 3

    def test_remove(self):
        c = LRCUCache(capacity=4)
        c.put("a", 1)
        assert c.remove("a") == 1
        assert c.remove("a") is None
        assert "a" not in c

    def test_validation(self):
        with pytest.raises(ValueError):
            LRCUCache(capacity=0)
        c = LRCUCache(capacity=2, max_count=5)
        with pytest.raises(ValueError):
            c.put("a", 1, count=6)


class TestLRCUEviction:
    def test_evicts_lowest_count(self):
        c = LRCUCache(capacity=3, decay_period=0)
        c.put("hot", 1)
        c.touch("hot")
        c.touch("hot")
        c.put("warm", 2)
        c.touch("warm")
        c.put("cold", 3)
        evicted = c.put("new", 4)
        assert evicted == ("cold", 3)
        assert "hot" in c and "warm" in c

    def test_ties_broken_by_lru(self):
        c = LRCUCache(capacity=3, decay_period=0)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        c.get("a")  # refresh a's recency; b becomes LRU within count-1
        evicted = c.put("d", 4)
        assert evicted[0] == "b"

    def test_count_one_evicted_before_referenced(self):
        """The paper's core claim: referH==1 entries go first."""
        c = LRCUCache(capacity=2, decay_period=0)
        c.put("referenced", 1)
        c.touch("referenced")
        c.put("once", 2)
        c.put("new", 3)
        assert "referenced" in c
        assert "once" not in c

    def test_eviction_counter(self):
        c = LRCUCache(capacity=1, decay_period=0)
        c.put("a", 1)
        c.put("b", 2)
        assert c.evictions == 1

    def test_replace_existing_does_not_evict(self):
        c = LRCUCache(capacity=1, decay_period=0)
        c.put("a", 1)
        assert c.put("a", 2) is None
        assert c.get("a") == 2


class TestPlainLRUMode:
    def test_evicts_least_recently_used_regardless_of_count(self):
        c = LRCUCache(capacity=3, decay_period=0, use_lrcu=False)
        c.put("old_hot", 1)
        for _ in range(5):
            c.touch("old_hot")
        c.put("mid", 2)
        c.put("recent", 3)
        c.get("mid")
        c.get("recent")
        evicted = c.put("new", 4)
        # LRU mode ignores the high count: old_hot is the victim.
        assert evicted[0] == "old_hot"


class TestDecay:
    def test_decay_reduces_counts(self):
        # Legacy insertion-driven epoch: touches never advance it.
        c = LRCUCache(capacity=16, decay_period=4, decay_amount=1,
                      decay_on="insert")
        c.put("a", 1)
        for _ in range(5):
            c.touch("a")
        assert c.count("a") == 6
        for i in range(4):  # triggers one decay pass
            c.put(f"k{i}", i)
        assert c.count("a") == 5
        assert c.decay_passes == 1

    def test_decay_floors_at_one(self):
        c = LRCUCache(capacity=16, decay_period=2, decay_amount=10)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        assert c.count("a") == 1

    def test_decay_disabled(self):
        c = LRCUCache(capacity=16, decay_period=0)
        c.put("a", 1)
        c.touch("a")
        for i in range(50):
            c.put(f"k{i}", i)
        assert c.count("a") == 2
        assert c.decay_passes == 0

    def test_insert_mode_ignores_gets_and_touches(self):
        # Regression for the latent bug this mode preserves: under
        # ``decay_on="insert"`` a lookup/touch-only phase never decays.
        c = LRCUCache(capacity=16, decay_period=4, decay_amount=1,
                      decay_on="insert")
        c.put("a", 1)
        for _ in range(100):
            c.get("a")
            c.touch("a")
            c.get("missing")
        assert c.decay_passes == 0


class TestDecayOps:
    """The fixed default: every operation advances the decay epoch."""

    def test_touches_drive_decay(self):
        c = LRCUCache(capacity=16, decay_period=4, decay_amount=1)
        c.put("a", 1)          # op 1
        c.touch("a")           # op 2 -> count 2
        c.touch("a")           # op 3 -> count 3
        c.touch("a")           # op 4 -> count 4, then decay -> 3
        assert c.decay_passes == 1
        assert c.count("a") == 3

    def test_gets_drive_decay_even_on_miss(self):
        c = LRCUCache(capacity=16, decay_period=3, decay_amount=1)
        c.put("a", 1)
        c.touch("a")           # count 2 (op 2)
        c.get("nope")          # miss still ticks (op 3 -> decay)
        assert c.decay_passes == 1
        assert c.count("a") == 1

    def test_replace_put_drives_decay(self):
        c = LRCUCache(capacity=16, decay_period=2, decay_amount=1)
        c.put("a", 1)          # op 1
        assert c.put("a", 2) is None  # replace, op 2 -> decay
        assert c.decay_passes == 1

    def test_touch_returns_pre_decay_count(self):
        # The bump that triggers the pass reports its own result; the
        # decay applies after.
        c = LRCUCache(capacity=16, decay_period=2, decay_amount=1)
        c.put("a", 1)          # op 1
        assert c.touch("a") == 2  # op 2 fires decay, return value is 2
        assert c.count("a") == 1  # decayed afterwards

    def test_validation_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            LRCUCache(capacity=4, decay_on="never")

    def test_decay_disabled_ignores_ops(self):
        c = LRCUCache(capacity=16, decay_period=0)
        c.put("a", 1)
        for _ in range(100):
            c.get("a")
        assert c.decay_passes == 0

    def test_items_iteration(self):
        c = LRCUCache(capacity=4, decay_period=0)
        c.put("a", 10)
        c.touch("a")
        items = list(c.items())
        assert items == [("a", 10, 2)]


class TestStress:
    def test_capacity_never_exceeded(self):
        import random
        rnd = random.Random(0)
        c = LRCUCache(capacity=32, decay_period=64)
        for i in range(5000):
            key = rnd.randrange(200)
            if key in c:
                c.touch(key)
            else:
                c.put(key, key)
            assert len(c) <= 32

    def test_internal_consistency_after_churn(self):
        import random
        rnd = random.Random(1)
        c = LRCUCache(capacity=16, decay_period=32)
        for i in range(3000):
            op = rnd.randrange(3)
            key = rnd.randrange(64)
            if op == 0:
                c.put(key, key)
            elif op == 1 and key in c:
                c.touch(key)
            elif op == 2:
                c.remove(key)
        # Every key reported by items() must be retrievable.
        for key, value, count in c.items():
            assert c.get(key) == value
            assert c.count(key) == count
