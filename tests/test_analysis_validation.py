"""Tests for the reproduction self-check."""

import pytest

from repro.analysis.validation import (
    Claim,
    ClaimResult,
    build_claims,
    render_validation,
    validate,
)


class TestClaimSuite:
    def test_claims_cover_headline_figures(self):
        ids = {c.claim_id for c in build_claims()}
        assert {"fig1", "fig2", "fig12", "fig15", "fig16", "fig17",
                "fig19"} <= ids

    @pytest.mark.slow
    def test_all_claims_pass(self):
        results = validate(requests=5_000)
        failed = [r for r in results if not r.passed]
        assert not failed, f"failed claims: {failed}"

    def test_validate_never_raises(self):
        # A broken claim must be reported, not raised.
        def explode():
            raise RuntimeError("boom")
        claim = Claim("x", "exploding claim", explode)
        from repro.analysis import validation
        results = []
        try:
            passed = bool(claim.check())
            results.append(ClaimResult(claim.claim_id, claim.description,
                                       passed))
        except Exception as exc:
            results.append(ClaimResult(claim.claim_id, claim.description,
                                       False, error=repr(exc)))
        assert not results[0].passed
        assert "boom" in results[0].error


class TestRendering:
    def test_render(self):
        results = [
            ClaimResult("fig1", "something", True),
            ClaimResult("fig2", "something else", False, error="oops"),
        ]
        out = render_validation(results)
        assert "PASS" in out
        assert "FAIL" in out
        assert "1/2 claims hold" in out
