"""Tests for sweep job specs and their content hashes."""

import subprocess
import sys

import pytest

from repro.common import config_digest, small_test_config
from repro.sim.engine import EngineConfig
from repro.sim.runner import ExperimentConfig
from repro.sweep import JobSpec, jobs_from_experiment


def make_spec(**overrides):
    base = dict(app="gcc", scheme="ESD", requests=2_000, seed=7,
                system=small_test_config())
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError):
            make_spec(app="nosuchapp")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_spec(scheme="NoSuchScheme")

    def test_rejects_nonpositive_requests(self):
        with pytest.raises(ValueError):
            make_spec(requests=0)

    def test_key_and_trace_id(self):
        spec = make_spec()
        assert spec.key == ("gcc", "ESD")
        assert spec.trace_id.startswith("gcc-s7-n2000-v")
        # Paired traces: the scheme must not influence the trace identity.
        assert make_spec(scheme="Baseline").trace_id == spec.trace_id


class TestDigest:
    def test_digest_is_stable_within_process(self):
        assert make_spec().digest() == make_spec().digest()

    def test_digest_changes_with_every_input(self):
        base = make_spec().digest()
        assert make_spec(scheme="Baseline").digest() != base
        assert make_spec(app="lbm").digest() != base
        assert make_spec(requests=2_001).digest() != base
        assert make_spec(seed=8).digest() != base
        assert make_spec(system=small_test_config().with_seed(9)).digest() \
            != base
        assert make_spec(
            engine=EngineConfig(max_outstanding=32)).digest() != base

    def test_digest_stable_across_processes(self):
        """The cache key must be identical in a fresh interpreter."""
        spec = make_spec()
        script = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.common import small_test_config;"
            "from repro.sweep import JobSpec;"
            "spec = JobSpec(app='gcc', scheme='ESD', requests=2000, seed=7,"
            "               system=small_test_config());"
            "print(spec.digest())"
        )
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, check=True,
                             cwd=str(__import__('pathlib').Path(
                                 __file__).parent.parent))
        assert out.stdout.strip() == spec.digest()


class TestConfigDigest:
    def test_identical_configs_collide(self):
        assert config_digest(small_test_config()) \
            == config_digest(small_test_config())

    def test_different_classes_do_not_collide(self):
        # Structurally equal payloads from different classes must differ.
        from repro.common.config import MetadataCacheConfig
        a = MetadataCacheConfig(efit_bytes=1024, amt_bytes=1024)
        assert config_digest(a) != config_digest(
            {"efit_bytes": 1024, "amt_bytes": 1024, "probe_latency_ns": 1.0})

    def test_rejects_unserializable_values(self):
        from repro.common import ConfigError
        with pytest.raises(ConfigError):
            config_digest(object())


class TestJobsFromExperiment:
    def test_grid_expansion_order_matches_serial_runner(self):
        config = ExperimentConfig(apps=["gcc", "lbm"],
                                  schemes=["Baseline", "ESD"],
                                  requests_per_app=1_000,
                                  system=small_test_config())
        specs = jobs_from_experiment(config)
        assert [s.key for s in specs] == [
            ("gcc", "Baseline"), ("gcc", "ESD"),
            ("lbm", "Baseline"), ("lbm", "ESD")]
        assert all(s.requests == 1_000 for s in specs)
        assert len({s.digest() for s in specs}) == 4
