"""Tests for the per-figure experiment functions.

These run miniature versions of each experiment (few apps, short traces)
and assert the paper's qualitative shapes, not absolute numbers.
"""

import pytest

from repro.analysis.experiments import (
    DEDUP_SCHEMES,
    fig1_duplicate_rate,
    fig2_worst_case,
    fig3_content_locality,
    fig5_lookup_overhead,
    fig8_collisions,
    fig11_write_reduction,
    fig12_write_speedup,
    fig13_read_speedup,
    fig14_ipc,
    fig15_tail_latency,
    fig16_energy,
    fig17_latency_profile,
    fig18_cache_sensitivity,
    fig19_metadata_overhead,
    run_evaluation_grid,
    table1_configuration,
)
from repro.common.types import WritePathStage
from repro.common.units import kib
from repro.sim.runner import scaled_system_config

APPS = ["gcc", "deepsjeng", "lbm", "namd"]
REQUESTS = 6_000


@pytest.fixture(scope="module")
def grid():
    """One shared mini evaluation grid for the grid-consuming figures."""
    return run_evaluation_grid(APPS, requests=REQUESTS)


class TestFig1:
    def test_rates_in_paper_range(self):
        result = fig1_duplicate_rate(apps=APPS, requests=4_000)
        assert set(result.rates) == set(APPS)
        assert result.rates["deepsjeng"] > 0.95
        assert result.rates["namd"] < 0.45
        assert "average" in result.render()


class TestFig2:
    def test_full_dedup_degrades_worst_case(self):
        result = fig2_worst_case(requests=12_000)
        for app in ("leela", "lbm"):
            per = result.normalized_ipc[app]
            assert per["Baseline"] == pytest.approx(1.0)
            # ESD never collapses and always beats full dedup.
            assert per["ESD"] > per["Dedup_SHA1"]
            assert per["ESD"] > 0.95
        # leela is the paper's canonical degradation case: full dedup falls
        # well below Baseline.
        leela = result.normalized_ipc["leela"]
        assert leela["Dedup_SHA1"] < 0.8
        assert leela["DeWrite"] < 0.8


class TestFig3:
    def test_bucket_shares_valid(self):
        result = fig3_content_locality(apps=APPS, requests=4_000)
        assert sum(result.unique_shares.values()) == pytest.approx(1.0)
        assert sum(result.volume_shares.values()) == pytest.approx(1.0)
        # Content locality: high-reference buckets carry far more volume
        # than their unique-line population, while the num1 bucket is the
        # reverse (many lines, little volume).
        u, v = result.headline
        assert v > u
        assert result.volume_shares["num1"] < result.unique_shares["num1"]


class TestFig5:
    def test_split_and_overhead(self):
        # 10k requests: enough for live unique contents to exceed the
        # scaled fingerprint cache, so NVMM-resolved duplicates appear.
        result = fig5_lookup_overhead(apps=["gcc", "lbm"], requests=10_000)
        cache_avg, nvmm_avg, lookup_avg = result.averages()
        assert cache_avg + nvmm_avg == pytest.approx(1.0)
        assert nvmm_avg > 0.0        # some dups only found via NVMM
        assert 0.0 < lookup_avg < 1.0


class TestFig8:
    def test_crc_collides_others_do_not(self):
        result = fig8_collisions(num_lines=30_000)
        assert result.rows["crc32"][1] >= 0
        assert result.rows["ecc"][1] == 0
        assert result.rows["sha1"][1] == 0
        # Analytic normalization: ECC is 2^32 stronger than CRC32.
        crc_prob = result.rows["crc32"][2]
        ecc_prob = result.rows["ecc"][2]
        assert crc_prob / ecc_prob == pytest.approx(2.0 ** 32)


class TestGridFigures:
    def test_fig11_reductions(self, grid):
        result = fig11_write_reduction(grid)
        # Full dedup eliminates at least as much as selective ESD.
        for app in APPS:
            per = result.reductions[app]
            assert per["Dedup_SHA1"] >= per["ESD"] - 0.02
        assert result.mean_reduction("ESD") > 0.3

    def test_fig12_esd_fastest_writes(self, grid):
        result = fig12_write_speedup(grid)
        assert result.geomean("ESD") > result.geomean("Dedup_SHA1")
        assert result.geomean("ESD") > 1.0

    def test_fig13_reads(self, grid):
        result = fig13_read_speedup(grid)
        assert result.geomean("ESD") > result.geomean("Dedup_SHA1")

    def test_fig14_ipc(self, grid):
        result = fig14_ipc(grid)
        assert result.geomean("ESD") > 1.0
        assert result.geomean("ESD") > result.geomean("Dedup_SHA1")

    def test_fig15_tails(self, grid):
        result = fig15_tail_latency(apps=APPS, grid=grid)
        for app in APPS:
            assert result.p99[app]["ESD"] <= result.p99[app]["Dedup_SHA1"]
            xs, ys = result.cdfs[app]["ESD"]
            assert ys == sorted(ys)

    def test_fig16_energy_ordering(self, grid):
        result = fig16_energy(grid)
        # ESD always consumes the least energy.
        for app in APPS:
            per = result.normalized[app]
            assert per["ESD"] <= per["DeWrite"] + 1e-9
            assert per["ESD"] < 1.0

    def test_fig17_profile_shapes(self, grid):
        result = fig17_latency_profile(grid)
        sha1 = result.profiles["Dedup_SHA1"]
        esd = result.profiles["ESD"]
        # SHA1: fingerprint compute dominates.
        assert sha1[WritePathStage.FINGERPRINT_COMPUTE] > 0.4
        # ESD: zero compute, zero NVMM lookup.
        assert WritePathStage.FINGERPRINT_COMPUTE not in esd
        assert WritePathStage.FINGERPRINT_NVMM_LOOKUP not in esd
        for shares in result.profiles.values():
            if shares:
                assert sum(shares.values()) == pytest.approx(1.0)

    def test_fig19_metadata_ordering(self, grid):
        result = fig19_metadata_overhead(grid=grid, app="gcc")
        assert result.normalized["Dedup_SHA1"] == pytest.approx(1.0)
        assert result.normalized["ESD"] < result.normalized["DeWrite"]
        assert result.normalized["ESD"] < 0.5


class TestFig18:
    def test_hit_rate_increases_with_size(self):
        result = fig18_cache_sensitivity(
            app="gcc", requests=4_000,
            efit_sizes=[kib(2), kib(8), kib(32)],
            amt_sizes=[kib(8), kib(64)])
        lrcu_rates = [r for _, r, _ in result.efit_series]
        assert lrcu_rates == sorted(lrcu_rates)
        amt_rates = [r for _, r in result.amt_series]
        assert amt_rates[-1] >= amt_rates[0]

    def test_lrcu_beats_plain_lru_when_pressured(self):
        result = fig18_cache_sensitivity(
            app="gcc", requests=4_000,
            efit_sizes=[kib(2)], amt_sizes=[kib(64)])
        _, with_lrcu, without_lrcu = result.efit_series[0]
        assert with_lrcu >= without_lrcu - 0.02


class TestTable1:
    def test_render_contains_paper_values(self):
        out = table1_configuration().render()
        assert "8 cores" in out
        assert "read 75 ns / write 150 ns" in out
        assert "read 1.49 nJ / write 6.75 nJ" in out
        assert "EFIT 512 KB" in out


class TestRenderers:
    """Every result object must render to a non-empty table."""

    def test_all_renders(self, grid):
        outputs = [
            fig11_write_reduction(grid).render(),
            fig12_write_speedup(grid).render(),
            fig13_read_speedup(grid).render(),
            fig14_ipc(grid).render(),
            fig16_energy(grid).render(),
            fig17_latency_profile(grid).render(),
            fig19_metadata_overhead(grid=grid, app="gcc").render(),
        ]
        for out in outputs:
            assert isinstance(out, str) and len(out) > 40
