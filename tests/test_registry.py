"""Tests for the unified scheme registry."""

import pytest

from repro import registry
from repro.dedup.base import DedupScheme


class TestNames:
    def test_evaluation_schemes_in_paper_order(self):
        assert registry.scheme_names() == (
            "Baseline", "Dedup_SHA1", "DeWrite", "ESD")

    def test_registered_names_list_evaluation_first(self):
        assert registry.registered_scheme_names() == (
            "Baseline", "Dedup_SHA1", "DeWrite", "ESD",
            "DaE", "PDE", "NV-Dedup", "ESD-Delta")

    def test_cli_codes(self):
        assert registry.scheme_codes() == {
            "0": "Baseline", "1": "Dedup_SHA1", "2": "DeWrite", "3": "ESD"}


class TestResolution:
    @pytest.mark.parametrize("token,expected", [
        ("0", "Baseline"),
        ("3", "ESD"),
        ("ESD", "ESD"),
        ("esd", "ESD"),
        ("dewrite", "DeWrite"),
        ("nv-dedup", "NV-Dedup"),
        ("esd-delta", "ESD-Delta"),
    ])
    def test_resolve_codes_and_names(self, token, expected):
        assert registry.resolve_scheme_name(token) == expected

    def test_unknown_token_lists_registered_names(self):
        with pytest.raises(ValueError, match="registered schemes: Baseline"):
            registry.resolve_scheme_name("4")

    def test_scheme_info_unknown_lists_registered_names(self):
        with pytest.raises(ValueError, match="registered schemes: Baseline"):
            registry.scheme_info("SHA-256")


class TestConstruction:
    @pytest.mark.parametrize("name", [
        "Baseline", "Dedup_SHA1", "DeWrite", "ESD",
        "DaE", "PDE", "NV-Dedup", "ESD-Delta"])
    def test_make_scheme_builds_named_instance(self, name, config):
        scheme = registry.make_scheme(name, config)
        assert isinstance(scheme, DedupScheme)
        assert scheme.name == name

    def test_info_class_matches_instance(self):
        info = registry.scheme_info("ESD")
        assert info.evaluation
        assert info.code == "3"
        assert info.cls.name == "ESD"


class TestRegistration:
    def test_custom_scheme_registers_and_resolves(self, config):
        from repro.dedup.baseline import BaselineScheme

        name = "TestOnlyScheme"
        try:
            @registry.register_scheme(name)
            class TestOnlyScheme(BaselineScheme):
                pass

            assert TestOnlyScheme.name == name
            assert name in registry.registered_scheme_names()
            assert registry.resolve_scheme_name("testonlyscheme") == name
            scheme = registry.make_scheme(name, config)
            assert isinstance(scheme, TestOnlyScheme)
        finally:
            registry._REGISTRY.pop(name, None)

    def test_duplicate_name_with_different_class_rejected(self):
        from repro.dedup.baseline import BaselineScheme

        with pytest.raises(ValueError, match="already registered"):
            @registry.register_scheme("Baseline")
            class Impostor(BaselineScheme):
                pass

    def test_same_class_reregistration_is_idempotent(self):
        from repro.core.esd import ESDScheme

        registry.register_scheme("ESD", evaluation=True, code="3")(ESDScheme)
        assert registry.scheme_info("ESD").cls is ESDScheme
