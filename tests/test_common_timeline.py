"""Unit tests for the declarative StageTimeline."""

import pytest

from repro.common.errors import ReproError
from repro.common.timeline import StageTimeline, TimelineError
from repro.common.types import LatencyBreakdown, WritePathStage

S = WritePathStage


class TestSerial:
    def test_advances_clock_and_charges_stage(self):
        tl = StageTimeline(100.0)
        tl.serial(S.ENCRYPTION, 40.0)
        assert tl.now == 140.0
        assert tl.exposures == {S.ENCRYPTION: 40.0}

    def test_accumulates_repeated_stage(self):
        tl = StageTimeline(0.0)
        tl.serial(S.FINGERPRINT_COMPUTE, 40.0)
        tl.serial(S.FINGERPRINT_COMPUTE, 312.0)
        assert tl.exposures[S.FINGERPRINT_COMPUTE] == pytest.approx(352.0)

    def test_negative_duration_rejected(self):
        tl = StageTimeline(0.0)
        with pytest.raises(TimelineError):
            tl.serial(S.ENCRYPTION, -1.0)

    def test_zero_duration_dropped_from_exposures(self):
        tl = StageTimeline(0.0)
        tl.serial(S.METADATA, 0.0)
        assert tl.exposures == {}
        assert tl.critical_path_ns == 0.0


class TestAdvanceTo:
    def test_charges_wall_clock_to_stage(self):
        tl = StageTimeline(10.0)
        tl.advance_to(S.WRITE_UNIQUE, 160.0)
        assert tl.now == 160.0
        assert tl.exposures == {S.WRITE_UNIQUE: 150.0}

    def test_completion_in_the_past_rejected(self):
        tl = StageTimeline(100.0)
        with pytest.raises(TimelineError):
            tl.advance_to(S.WRITE_UNIQUE, 50.0)

    def test_completion_at_now_charges_nothing(self):
        tl = StageTimeline(100.0)
        tl.advance_to(S.METADATA, 100.0)
        assert tl.now == 100.0
        assert tl.exposures == {}


class TestBranchJoin:
    def test_hidden_branch_charges_nothing(self):
        tl = StageTimeline(0.0)
        leg = tl.overlap_with(S.FINGERPRINT_COMPUTE, 40.0)
        tl.serial(S.ENCRYPTION, 100.0)
        tl.join(leg)
        assert tl.now == 100.0
        assert S.FINGERPRINT_COMPUTE not in tl.exposures
        tl.seal()

    def test_exposed_tail_charged_to_branch_stage(self):
        tl = StageTimeline(0.0)
        leg = tl.overlap_with(S.FINGERPRINT_COMPUTE, 321.0)
        tl.serial(S.ENCRYPTION, 100.0)
        tl.join(leg)
        assert tl.now == 321.0
        assert tl.exposures[S.FINGERPRINT_COMPUTE] == pytest.approx(221.0)
        tl.seal()

    def test_join_clips_multi_segment_branch(self):
        tl = StageTimeline(0.0)
        leg = tl.branch()
        leg.serial(S.FINGERPRINT_COMPUTE, 40.0)
        leg.serial(S.FINGERPRINT_NVMM_LOOKUP, 60.0)
        tl.serial(S.ENCRYPTION, 50.0)
        tl.join(leg)
        # Window [50, 100]: 0 of the CRC (ended at 40) is exposed, and the
        # lookup ([40, 100]) contributes only its [50, 100] part.
        assert tl.now == 100.0
        assert S.FINGERPRINT_COMPUTE not in tl.exposures
        assert tl.exposures[S.FINGERPRINT_NVMM_LOOKUP] == pytest.approx(50.0)
        tl.seal()

    def test_unjoined_branch_is_wasted_work(self):
        tl = StageTimeline(0.0)
        tl.overlap_with(S.ENCRYPTION, 100.0)  # speculative, never joined
        tl.serial(S.READ_FOR_COMPARISON, 30.0)
        tl.seal()
        assert tl.critical_path_ns == 30.0
        assert S.ENCRYPTION not in tl.exposures

    def test_joined_leg_is_sealed(self):
        tl = StageTimeline(0.0)
        leg = tl.overlap_with(S.ENCRYPTION, 10.0)
        tl.join(leg)
        with pytest.raises(TimelineError):
            leg.serial(S.ENCRYPTION, 1.0)

    def test_parallel_joins_in_declaration_order(self):
        tl = StageTimeline(0.0)
        tl.parallel((S.ENCRYPTION, 100.0), (S.FINGERPRINT_COMPUTE, 321.0))
        # The first leg absorbs the shared prefix; the second only its tail.
        assert tl.exposures[S.ENCRYPTION] == pytest.approx(100.0)
        assert tl.exposures[S.FINGERPRINT_COMPUTE] == pytest.approx(221.0)
        assert tl.critical_path_ns == pytest.approx(321.0)
        tl.seal()


class TestSeal:
    def test_conservation_holds_for_mixed_shapes(self):
        tl = StageTimeline(1_000.0)
        tl.serial(S.FINGERPRINT_COMPUTE, 40.0)
        tl.advance_to(S.FINGERPRINT_NVMM_LOOKUP, 1_100.0)
        leg = tl.overlap_with(S.METADATA, 200.0)
        tl.serial(S.READ_FOR_COMPARISON, 105.0)
        tl.join(leg)
        tl.seal()
        assert sum(tl.exposures.values()) == pytest.approx(
            tl.critical_path_ns)

    def test_unattributed_time_fails_conservation(self):
        tl = StageTimeline(0.0)
        # Joining a leg that was never forked from this timeline leaves the
        # gap before its fork unattributed.
        foreign = StageTimeline(500.0)
        foreign.serial(S.ENCRYPTION, 10.0)
        tl.join(foreign)
        with pytest.raises(TimelineError):
            tl.seal()

    def test_sealed_rejects_mutation(self):
        tl = StageTimeline(0.0)
        tl.serial(S.ENCRYPTION, 1.0)
        tl.seal()
        assert tl.sealed
        with pytest.raises(TimelineError):
            tl.serial(S.ENCRYPTION, 1.0)
        with pytest.raises(TimelineError):
            tl.advance_to(S.ENCRYPTION, 5.0)
        with pytest.raises(TimelineError):
            tl.branch()

    def test_seal_is_idempotent(self):
        tl = StageTimeline(0.0)
        tl.serial(S.ENCRYPTION, 1.0)
        assert tl.seal() is tl
        assert tl.seal() is tl


class TestReporting:
    def test_fold_into_accumulates(self):
        breakdown = LatencyBreakdown()
        for _ in range(3):
            tl = StageTimeline(0.0)
            tl.serial(S.ENCRYPTION, 100.0)
            tl.serial(S.WRITE_UNIQUE, 150.0)
            tl.seal().fold_into(breakdown)
        assert breakdown.by_stage[S.ENCRYPTION] == pytest.approx(300.0)
        assert breakdown.by_stage[S.WRITE_UNIQUE] == pytest.approx(450.0)

    def test_fold_into_skips_zero_exposures(self):
        breakdown = LatencyBreakdown()
        tl = StageTimeline(0.0)
        tl.serial(S.METADATA, 0.0)
        tl.serial(S.ENCRYPTION, 1.0)
        tl.seal().fold_into(breakdown)
        assert S.METADATA not in breakdown.by_stage

    def test_segments_in_declaration_order(self):
        tl = StageTimeline(0.0)
        tl.serial(S.FINGERPRINT_COMPUTE, 40.0)
        tl.serial(S.ENCRYPTION, 100.0)
        assert [s for s, _, _ in tl.segments()] == [
            S.FINGERPRINT_COMPUTE, S.ENCRYPTION]

    def test_timeline_error_is_repro_error(self):
        assert issubclass(TimelineError, ReproError)
