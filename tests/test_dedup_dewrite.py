"""Tests for the DeWrite scheme (CRC + prediction + parallel encryption)."""

import pytest

from repro.common.types import AccessType, MemoryRequest, WritePathStage
from repro.dedup.dewrite import DeWriteScheme


def wreq(addr, data, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         issue_time_ns=t)


def rreq(addr, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.READ, issue_time_ns=t)


LINE = bytes(range(64))
OTHER = b"\x99" * 64


@pytest.fixture
def scheme(config):
    return DeWriteScheme(config)


class TestDeduplication:
    def test_duplicates_eliminated_with_verification(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(64, LINE, t=500.0))
        assert r.deduplicated
        # CRC match alone is not trusted: a comparison read happened.
        assert WritePathStage.READ_FOR_COMPARISON in r.stages

    def test_read_back_correct(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, LINE, t=500.0))
        scheme.handle_write(wreq(128, OTHER, t=1000.0))
        assert scheme.handle_read(rreq(64, t=2000.0)).data == LINE
        assert scheme.handle_read(rreq(128, t=2500.0)).data == OTHER

    def test_self_rewrite_same_content_safe(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(0, LINE, t=500.0))
        assert r.deduplicated
        assert scheme.handle_read(rreq(0, t=1000.0)).data == LINE


class TestPredictionPaths:
    def test_cold_write_takes_predicted_dup_path(self, scheme):
        # Predictor initializes duplicate-biased; a cold unique write is an
        # F2 misprediction: serial CRC appears in the stage breakdown.
        r = scheme.handle_write(wreq(0, LINE))
        assert not r.deduplicated
        assert r.stages.get(WritePathStage.FINGERPRINT_COMPUTE) == \
            pytest.approx(scheme.engine.latency_ns)

    def test_trained_unique_path_hides_crc(self, scheme):
        # Train address 0 toward unique, then write: the CRC (40 ns) hides
        # under the encryption (40 ns), so no exposed compute stage.
        for i in range(4):
            scheme.handle_write(wreq(0, bytes([i]) * 64, t=i * 500.0))
        r = scheme.handle_write(wreq(0, b"\x42" * 64, t=5000.0))
        exposed = r.stages.get(WritePathStage.FINGERPRINT_COMPUTE, 0.0)
        assert exposed <= max(0.0, scheme.engine.latency_ns
                              - scheme.crypto.encrypt_latency_ns) + 1e-9

    def test_f4_wasted_encryption_counted(self, scheme):
        # Train toward unique, then write a duplicate -> F4.
        for i in range(4):
            scheme.handle_write(wreq(0, bytes([i]) * 64, t=i * 500.0))
        scheme.handle_write(wreq(64, LINE, t=5000.0))
        r = scheme.handle_write(wreq(0, LINE, t=6000.0))
        assert r.deduplicated
        assert scheme.counters.get("wasted_encryptions") >= 1

    def test_predictor_trained_by_outcomes(self, scheme):
        for i in range(4):
            scheme.handle_write(wreq(0, bytes([i + 1]) * 64, t=i * 500.0))
        assert scheme.predictor.stats.total >= 4


class TestCosts:
    def test_crc_cheaper_than_sha1_on_path(self, scheme):
        r = scheme.handle_write(wreq(0, LINE))
        # Even the serial path must be far below SHA-1's 321 ns compute.
        assert r.stages.get(WritePathStage.FINGERPRINT_COMPUTE, 0.0) < 100.0

    def test_metadata_entry_is_17_bytes(self, scheme):
        # The paper: (16 bytes + 3 bits) per physical line.
        assert scheme.fingerprint_entry_size == 17

    def test_energy_includes_wasted_work(self, scheme):
        from repro.nvmm.energy import EnergyCategory
        for i in range(4):
            scheme.handle_write(wreq(0, bytes([i]) * 64, t=i * 500.0))
        scheme.handle_write(wreq(64, LINE, t=5000.0))
        scheme.handle_write(wreq(0, LINE, t=6000.0))  # F4
        assert scheme.crypto_energy.get(EnergyCategory.ENCRYPTION) > 0
