"""Tests for the reporting helpers."""

import pytest

from repro.analysis.reporting import format_series, format_table, normalized_map


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]
        assert "1.500" in out

    def test_title(self):
        out = format_table(["x"], [["y"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line padded to the same width

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_custom_float_format(self):
        out = format_table(["v"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in out

    def test_int_and_str_cells(self):
        out = format_table(["a", "b"], [[42, "hello"]])
        assert "42" in out and "hello" in out


class TestFormatSeries:
    def test_renders_points(self):
        out = format_series("cdf", [1.0, 2.0, 3.0], [0.1, 0.5, 1.0])
        assert "(1, 0.10)" in out
        assert "(3, 1.00)" in out

    def test_downsamples(self):
        xs = list(range(100))
        ys = [x / 100 for x in xs]
        out = format_series("s", xs, ys, max_points=5)
        assert out.count("(") <= 7

    def test_includes_last_point(self):
        xs = list(range(100))
        ys = [x / 99 for x in xs]
        out = format_series("s", xs, ys, max_points=5)
        assert "(99, 1.00)" in out

    def test_empty(self):
        assert "(empty)" in format_series("s", [], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1.0], [])


class TestNormalizedMap:
    def test_direct(self):
        out = normalized_map({"a": 10.0, "b": 5.0}, "a")
        assert out == {"a": 1.0, "b": 0.5}

    def test_inverted_for_speedups(self):
        out = normalized_map({"base": 100.0, "fast": 50.0}, "base",
                             invert=True)
        assert out["fast"] == 2.0

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            normalized_map({"a": 0.0}, "a")
