"""Tests for mid-run session checkpoints and bit-exact resume."""

from dataclasses import replace
from itertools import islice

import pytest

from repro.common import small_test_config
from repro.common.errors import CheckpointError, SessionError
from repro.dedup import make_scheme
from repro.perf import memo
from repro.sim.checkpoint import (
    CHECKPOINT_MAGIC,
    checkpoint_bytes,
    load_checkpoint,
    write_checkpoint,
)
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.export import result_state_bytes
from repro.sim.session import Session
from repro.workloads.generator import TraceGenerator


@pytest.fixture(autouse=True)
def _cold_caches():
    memo.reset_all()
    yield
    memo.reset_all()


def _mode_config(fast, vec):
    return replace(small_test_config(), use_fastpath=fast,
                   use_vectorized=vec)


def _trace(n=2_600, app="gcc", seed=7):
    return TraceGenerator(app, seed=seed).generate_list(n)


def _direct_state(trace, scheme_name, config, app="gcc"):
    engine = SimulationEngine(make_scheme(scheme_name, config),
                              EngineConfig())
    result = engine.run(iter(trace), app=app, total_hint=len(trace))
    return result_state_bytes(result)


def _resumed_state(trace, scheme_name, config, cut, app="gcc"):
    """Checkpoint at ``cut``, dirty the process, restore, finish."""
    engine = SimulationEngine(make_scheme(scheme_name, config),
                              EngineConfig())
    session = engine.open_session(app=app, total_hint=len(trace))
    stream = iter(trace)
    session.feed(islice(stream, cut))
    blob = session.checkpoint()
    # Deliberately dirty every piece of process-global state a resume
    # must overwrite: memo caches via an unrelated run.
    other = SimulationEngine(make_scheme("Baseline", small_test_config()))
    other.run(iter(_trace(400, app="lbm", seed=9)), app="lbm",
              total_hint=400)
    restored = Session.restore(blob)
    skip = restored.consumed
    replay = iter(trace)
    for _ in range(skip):
        next(replay)
    restored.feed(replay)
    return result_state_bytes(restored.finalize())


class TestBitExactResume:
    @pytest.mark.parametrize("scheme_name", ["ESD", "NV-Dedup", "DeWrite"])
    @pytest.mark.parametrize("fast,vec", [(True, True), (True, False),
                                          (False, False)])
    def test_resume_matches_direct(self, scheme_name, fast, vec):
        trace = _trace()
        config = _mode_config(fast, vec)
        direct = _direct_state(trace, scheme_name, config)
        resumed = _resumed_state(trace, scheme_name, config, cut=1_337)
        assert direct == resumed

    def test_vec_pending_tail_checkpoints(self):
        """A cut inside an epoch must carry the buffered tail."""
        trace = _trace(1_500)
        config = _mode_config(True, True)
        engine = SimulationEngine(make_scheme("ESD", config), EngineConfig())
        session = engine.open_session(app="gcc", total_hint=len(trace))
        session.feed(islice(iter(trace), 1_100))
        assert session.pending > 0  # mid-epoch: tail buffered, not flushed
        assert session.consumed == 1_100
        direct = _direct_state(trace, "ESD", config)
        resumed = _resumed_state(trace, "ESD", config, cut=1_100)
        assert direct == resumed

    def test_checkpoint_is_pure_snapshot(self):
        """Checkpointing must not perturb the continuing session."""
        trace = _trace(1_800)
        config = _mode_config(True, True)
        engine = SimulationEngine(make_scheme("ESD", config), EngineConfig())
        session = engine.open_session(app="gcc", total_hint=len(trace))
        stream = iter(trace)
        session.feed(islice(stream, 600))
        session.checkpoint()
        session.checkpoint()
        session.feed(stream)
        with_ckpt = result_state_bytes(session.finalize())
        assert with_ckpt == _direct_state(trace, "ESD", config)


class TestCheckpointContainer:
    def _session_blob(self, cut=500):
        trace = _trace(1_000)
        engine = SimulationEngine(make_scheme("ESD", small_test_config()),
                                  EngineConfig())
        session = engine.open_session(app="gcc", total_hint=len(trace))
        session.feed(islice(iter(trace), cut))
        return session.checkpoint()

    def test_meta(self):
        blob = self._session_blob(cut=500)
        restored = load_checkpoint(blob)
        assert restored.meta["app"] == "gcc"
        assert restored.meta["scheme"] == "ESD"
        assert restored.consumed == 500

    def test_file_roundtrip(self, tmp_path):
        trace = _trace(900)
        engine = SimulationEngine(make_scheme("ESD", small_test_config()),
                                  EngineConfig())
        session = engine.open_session(app="gcc", total_hint=len(trace))
        session.feed(islice(iter(trace), 400))
        path = tmp_path / "run.ckpt"
        write_checkpoint(session, path)
        assert load_checkpoint(path).consumed == 400
        # Atomic finalize leaves no temp litter.
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]

    def test_finalized_session_rejected(self):
        trace = _trace(300)
        engine = SimulationEngine(make_scheme("ESD", small_test_config()),
                                  EngineConfig())
        session = engine.open_session(app="gcc", total_hint=len(trace))
        session.feed(iter(trace))
        session.finalize()
        with pytest.raises(SessionError):
            checkpoint_bytes(session)

    def test_bad_magic(self):
        blob = bytearray(self._session_blob())
        blob[:8] = b"NOTACKPT"
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(bytes(blob))

    def test_truncated(self):
        blob = self._session_blob()
        with pytest.raises(CheckpointError):
            load_checkpoint(blob[: len(blob) // 2])

    def test_payload_corruption_caught_by_crc(self):
        blob = bytearray(self._session_blob())
        blob[-1] ^= 0xFF
        with pytest.raises(CheckpointError, match="checksum|CRC|crc"):
            load_checkpoint(bytes(blob))

    def test_short_header(self):
        with pytest.raises(CheckpointError):
            load_checkpoint(CHECKPOINT_MAGIC)
