"""Tests for the in-order core timing / IPC model."""

import pytest

from repro.cache.cpu import CoreTimingModel, relative_ipc
from repro.common.config import ProcessorConfig


class TestCoreTimingModel:
    def test_pure_compute_ipc_is_one(self):
        core = CoreTimingModel()
        core.retire_instructions(1000)
        assert core.ipc == pytest.approx(1.0)

    def test_memory_stalls_lower_ipc(self):
        core = CoreTimingModel()
        core.retire_instructions(1000)
        core.memory_stall(500.0, is_write=False)  # 1000 cycles at 2 GHz
        assert core.ipc == pytest.approx(1000 / 2000)

    def test_write_stall_fraction_applies(self):
        core = CoreTimingModel(write_stall_fraction=0.5)
        core.retire_instructions(100)
        core.memory_stall(100.0, is_write=True)  # 200 cycles * 0.5 = 100
        assert core.total_cycles == pytest.approx(200)

    def test_reads_stall_fully(self):
        core = CoreTimingModel(write_stall_fraction=0.0)
        core.retire_instructions(100)
        core.memory_stall(100.0, is_write=False)
        assert core.stall_cycles == pytest.approx(200)

    def test_clock_scaling(self):
        fast = CoreTimingModel(config=ProcessorConfig(clock_ghz=4.0))
        fast.memory_stall(100.0, is_write=False)
        assert fast.stall_cycles == pytest.approx(400)

    def test_empty_ipc_zero(self):
        assert CoreTimingModel().ipc == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreTimingModel(write_stall_fraction=1.5)
        core = CoreTimingModel()
        with pytest.raises(ValueError):
            core.retire_instructions(-1)
        with pytest.raises(ValueError):
            core.memory_stall(-1.0, is_write=False)

    def test_merged_with(self):
        a = CoreTimingModel()
        a.retire_instructions(100)
        a.memory_stall(50.0, is_write=False)
        b = CoreTimingModel()
        b.retire_instructions(200)
        merged = a.merged_with(b)
        assert merged.instructions == 300
        assert merged.stall_cycles == a.stall_cycles


class TestRelativeIPC:
    def test_faster_memory_higher_ipc(self):
        base = CoreTimingModel()
        base.retire_instructions(1000)
        base.memory_stall(1000.0, is_write=False)
        fast = CoreTimingModel()
        fast.retire_instructions(1000)
        fast.memory_stall(100.0, is_write=False)
        assert relative_ipc(base, fast) > 1.0

    def test_identical_is_one(self):
        a = CoreTimingModel()
        a.retire_instructions(10)
        assert relative_ipc(a, a) == pytest.approx(1.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_ipc(CoreTimingModel(), CoreTimingModel())
