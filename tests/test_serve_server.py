"""End-to-end tests of the serving front end (ISSUE 7 satellites).

Covers the three behaviors the ISSUE names: concurrent tenants getting
correct independent results, backpressure engaging and recovering on a
fast producer, and SIGTERM draining in-flight sessions to a clean exit.

Parity basis: a single non-interleaved session is bit-identical to a
direct ``run()`` (full state).  Concurrent sessions share the
process-global memo caches, so the cache-statistics extras — ``memo_*``
and the ``vec_batched_*`` priming counts (the precomputer skips
contents another session already cached) — may differ; everything else
(latencies, counters, energy, IPC, raw samples) must still match
exactly.  ``_comparable`` strips exactly those keys.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common.errors import ServeError
from repro.registry import make_scheme
from repro.serve import BackgroundServer, ServeClient, ServeConfig
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.export import result_to_state
from repro.sim.runner import scaled_system_config
from repro.workloads.generator import TraceGenerator

REPO = Path(__file__).resolve().parent.parent


def _trace(app: str, n: int, seed: int):
    return TraceGenerator(app, seed=seed).generate_list(n)


def _direct_state(scheme_name: str, trace, app: str, options=None):
    config = scaled_system_config()
    if options:
        config = config.with_options(options)
    engine = SimulationEngine(make_scheme(scheme_name, config),
                              EngineConfig())
    return result_to_state(engine.run(iter(trace), app=app,
                                      total_hint=len(trace)))


#: Extras keys whose values depend on what other sessions cached (see
#: the module docstring) — excluded from the concurrent-parity check.
_CACHE_DEPENDENT = ("memo_", "vec_batched_ecc_lines",
                    "vec_batched_fp_lines")


def _comparable(state):
    """A state snapshot minus the interleaving-dependent cache stats."""
    out = dict(state)
    out["extras"] = {k: v for k, v in state["extras"].items()
                     if not k.startswith(_CACHE_DEPENDENT)}
    return out


def test_concurrent_tenants_get_independent_results():
    """N clients, different schemes/apps/options, all streaming at once:
    every tenant's row must equal its own direct run."""
    tenants = [
        ("alice", "ESD", "gcc", 4000, 13, None),
        ("bob", "Baseline", "lbm", 3000, 17, None),
        ("carol", "DeWrite", "deepsjeng", 3500, 19, None),
        ("dave", "ESD", "gcc", 3000, 23, {"esd.decay_period": 512}),
    ]
    traces = {t[0]: _trace(t[2], t[3], t[4]) for t in tenants}
    payloads = {}
    errors = []

    with BackgroundServer(ServeConfig(max_sessions=8)) as server:

        def _drive(tenant, scheme, app, options):
            try:
                with ServeClient("127.0.0.1", server.port) as client:
                    payloads[tenant] = client.run_trace(
                        iter(traces[tenant]), scheme, tenant=tenant,
                        app=app, total_hint=len(traces[tenant]),
                        options=options, batch_size=256)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((tenant, exc))

        threads = [threading.Thread(
            target=_drive, args=(t[0], t[1], t[2], t[5]))
            for t in tenants]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)

        with ServeClient("127.0.0.1", server.port) as client:
            flat = client.metrics()["flat"]

    assert not errors, errors
    assert server.drained_clean is True
    for tenant, scheme, app, _n, _seed, options in tenants:
        expected = _direct_state(scheme, traces[tenant], app, options)
        got = payloads[tenant]["state"]
        assert _comparable(got) == _comparable(expected), tenant
    # Per-tenant counters saw every request.
    for tenant, _scheme, _app, n, _seed, _options in tenants:
        assert flat[f'serve_requests_total{{tenant="{tenant}"}}'] == n
    assert flat["serve_sessions_finalized"] == len(tenants)


def test_single_session_full_bit_parity():
    """With no interleaving, even the memo stats match: full state."""
    trace = _trace("gcc", 3000, 41)
    with BackgroundServer() as server:
        with ServeClient("127.0.0.1", server.port) as client:
            payload = client.run_trace(iter(trace), "ESD", app="gcc",
                                       total_hint=len(trace))
    assert payload["state"] == _direct_state("ESD", trace, "gcc")
    assert server.drained_clean is True


def test_backpressure_engages_and_recovers():
    """A producer outrunning the engine sees backpressure rejections,
    retries after the advertised delay, and still lands the exact
    result; the queue bound is respected throughout."""
    trace = _trace("gcc", 6000, 47)
    config = ServeConfig(queue_limit=256, retry_after_ms=5)
    with BackgroundServer(config) as server:
        with ServeClient("127.0.0.1", server.port) as client:
            client.open_session("ESD", tenant="pusher", app="gcc",
                                total_hint=len(trace))
            state = client.session
            # Admitted batches never exceed the remaining credits, so
            # queue depth never exceeds the bound by construction; the
            # point here is that rejection actually happens and the
            # stream still completes.
            client.stream(trace, batch_size=128)
            rejections = state.backpressure_rejections
            payload = client.finalize()
            flat = client.metrics()["flat"]
    assert rejections > 0
    assert flat['serve_rejected_total{tenant="pusher"}'] == rejections
    assert flat['serve_queue_depth{tenant="pusher"}'] == 0
    assert payload["state"] == _direct_state("ESD", trace, "gcc")
    assert server.drained_clean is True


def test_oversized_batch_is_rejected_not_retried():
    config = ServeConfig(queue_limit=64)
    with BackgroundServer(config) as server:
        with ServeClient("127.0.0.1", server.port) as client:
            client.open_session("Baseline", app="gcc")
            with pytest.raises(ServeError) as excinfo:
                client.send(_trace("gcc", 65, 3))
            assert excinfo.value.code == "bad_request"
            client.finalize()


def test_unknown_scheme_and_session_errors():
    with BackgroundServer() as server:
        with ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.open_session("NotAScheme")
            assert excinfo.value.code == "unknown_scheme"
            with pytest.raises(ServeError) as excinfo:
                client.open_session("ESD", options={"no.such.field": 1})
            assert excinfo.value.code == "bad_request"


def test_session_limit():
    with BackgroundServer(ServeConfig(max_sessions=1)) as server:
        first = ServeClient("127.0.0.1", server.port)
        try:
            first.open_session("Baseline", app="gcc")
            with ServeClient("127.0.0.1", server.port) as second:
                with pytest.raises(ServeError) as excinfo:
                    second.open_session("Baseline", app="gcc")
                assert excinfo.value.code == "session_limit"
            first.finalize()
        finally:
            first.close()


def _spawn_serve_cli():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--drain-grace", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = re.match(r"serving on .*:(\d+)", line)
    assert match, f"unexpected announce line: {line!r}"
    return proc, int(match.group(1))


def test_sigterm_drains_in_flight_session_and_exits_zero():
    """SIGTERM mid-stream: the in-flight session keeps streaming and
    finalizes, new sessions are refused, the process exits 0."""
    trace = _trace("gcc", 4000, 53)
    proc, port = _spawn_serve_cli()
    try:
        client = ServeClient("127.0.0.1", port)
        client.open_session("ESD", app="gcc", total_hint=len(trace))
        # Stream the first half, then signal the server mid-session.
        client.stream(trace[:2000], batch_size=500)
        proc.send_signal(signal.SIGTERM)
        # Draining servers refuse new sessions but keep serving ours.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            with ServeClient("127.0.0.1", port) as probe:
                if probe.ping().get("draining"):
                    with pytest.raises(ServeError) as excinfo:
                        probe.open_session("Baseline")
                    assert excinfo.value.code == "shutting_down"
                    break
            time.sleep(0.05)
        else:
            pytest.fail("server never reported draining")
        client.stream(trace[2000:], batch_size=500)
        payload = client.finalize()
        client.close()
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, (out, err)
    assert "drained clean" in out
    assert payload["state"] == _direct_state("ESD", trace, "gcc")
