"""Tests for repro.perf: memo cache machinery and the fast-path switch."""

import pytest

from repro import perf
from repro.ecc import codec
from repro.perf import memo
from repro.perf.memo import MemoCache


@pytest.fixture(autouse=True)
def _restore_fastpath_state():
    """Every test leaves the global switch and caches as it found them."""
    previous = memo.ENABLED
    yield
    memo.ENABLED = previous
    memo.reset_all()


def _unique_keys(count):
    return [f"key-{i}".encode() for i in range(count)]


class TestMemoCache:
    def test_hit_miss_counters(self):
        cache = MemoCache("t", capacity=4)
        assert cache.get(b"a") is None
        cache.put(b"a", 1)
        assert cache.get(b"a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_get_default_on_miss(self):
        cache = MemoCache("t", capacity=4)
        assert cache.get(b"a", "fallback") == "fallback"

    def test_lru_bound_under_adversarial_unique_stream(self):
        # A stream of only-unique keys (zero reuse — the memo's worst case)
        # must never grow the cache past its cap.
        cache = MemoCache("t", capacity=8)
        for key in _unique_keys(100):
            assert cache.get(key) is None
            cache.put(key, key)
            assert len(cache) <= 8
        assert len(cache) == 8
        assert cache.evictions == 100 - 8
        assert cache.misses == 100
        assert cache.hits == 0

    def test_lru_evicts_least_recently_used(self):
        cache = MemoCache("t", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    def test_put_existing_key_refreshes_without_evicting(self):
        cache = MemoCache("t", capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update, not insert
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_reset_clears_entries_and_counters(self):
        cache = MemoCache("t", capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.reset()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)
        assert not cache.touched

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemoCache("t", capacity=0)


class TestKernelCacheBound:
    def test_line_ecc_cache_bounded_with_shrunk_cap(self):
        # Shrink the real kernel cache's cap and hammer it with unique
        # lines: the LRU bound must hold at the actual call site too.
        cache = codec._LINE_ECC_CACHE
        original_capacity = cache.capacity
        memo.ENABLED = True
        memo.reset_all()
        try:
            cache.capacity = 16
            for i in range(64):
                codec.line_ecc(i.to_bytes(2, "little") * 32)
                assert len(cache) <= 16
            assert cache.evictions == 64 - 16
            assert cache.misses == 64
        finally:
            cache.capacity = original_capacity

    def test_all_registered_caches_are_size_bounded(self):
        for cache in memo.registered_caches():
            assert cache.capacity > 0
            assert len(cache) <= cache.capacity


class TestRegistry:
    def test_get_cache_returns_shared_instance(self):
        a = memo.get_cache("test_registry_shared", 8)
        b = memo.get_cache("test_registry_shared", 999)
        assert a is b
        assert a.capacity == 8  # first caller fixes the capacity

    def test_reset_all_resets_registered_caches(self):
        cache = memo.get_cache("test_registry_reset", 8)
        cache.put("k", 1)
        cache.get("k")
        memo.reset_all()
        assert len(cache) == 0 and not cache.touched

    def test_stats_snapshot_prefix_and_touched_filter(self):
        memo.reset_all()
        cache = memo.get_cache("test_registry_stats", 8)
        assert "memo_test_registry_stats_hits" not in memo.stats_snapshot()
        cache.get("miss")
        snap = memo.stats_snapshot()
        assert snap["memo_test_registry_stats_misses"] == 1.0
        assert snap["memo_test_registry_stats_hits"] == 0.0
        assert snap["memo_test_registry_stats_size"] == 0.0
        custom = memo.stats_snapshot("x_", only_touched=False)
        assert "x_test_registry_stats_misses" in custom


class TestSwitch:
    @pytest.mark.parametrize("raw,expected", [
        (None, True), ("", True), ("1", True), ("on", True), ("yes", True),
        ("0", False), ("false", False), ("FALSE", False), ("Off", False),
        ("no", False), (" no ", False),
    ])
    def test_env_parsing(self, monkeypatch, raw, expected):
        if raw is None:
            monkeypatch.delenv(memo.ENV_VAR, raising=False)
        else:
            monkeypatch.setenv(memo.ENV_VAR, raw)
        assert memo.default_enabled() is expected

    def test_set_fastpath_returns_previous(self):
        perf.set_fastpath(True)
        assert perf.set_fastpath(False) is True
        assert perf.fastpath_enabled() is False

    def test_fastpath_scope_restores_on_exit(self):
        perf.set_fastpath(True)
        with perf.fastpath(False):
            assert not perf.fastpath_enabled()
        assert perf.fastpath_enabled()

    def test_fastpath_scope_restores_on_error(self):
        perf.set_fastpath(True)
        with pytest.raises(RuntimeError):
            with perf.fastpath(False):
                raise RuntimeError("boom")
        assert perf.fastpath_enabled()


class TestRunLifecycle:
    def test_begin_run_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(memo.ENV_VAR, "0")
        previous, active = perf.begin_run(True)
        assert active is True and perf.fastpath_enabled()
        perf.end_run(previous)

    def test_begin_run_none_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(memo.ENV_VAR, "0")
        previous, active = perf.begin_run(None)
        assert active is False
        perf.end_run(previous)

    def test_begin_run_resets_caches(self):
        cache = memo.get_cache("test_lifecycle", 8)
        cache.put("stale", 1)
        previous, _ = perf.begin_run(True)
        assert len(cache) == 0
        perf.end_run(previous)

    def test_end_run_restores_switch_and_snapshots(self):
        perf.set_fastpath(False)
        previous, _ = perf.begin_run(True)
        memo.get_cache("test_lifecycle", 8).get("miss")
        stats = perf.end_run(previous)
        assert perf.fastpath_enabled() is False
        assert stats["memo_test_lifecycle_misses"] == 1.0
