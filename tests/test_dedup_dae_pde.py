"""Tests for the rejected motivation schemes: DaE and PDE."""

import pytest

from repro.common.types import AccessType, MemoryRequest
from repro.dedup import make_scheme
from repro.dedup.dae_pde import DaEScheme, PDEScheme
from repro.nvmm.energy import EnergyCategory


def wreq(addr, data, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         issue_time_ns=t)


def rreq(addr, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.READ, issue_time_ns=t)


LINE = bytes(range(64))


class TestDaE:
    def test_factory(self, config):
        assert isinstance(make_scheme("DaE", config), DaEScheme)

    def test_diffusion_defeats_dedup(self, config):
        """The paper's core DaE argument: identical plaintexts never match
        after counter-mode encryption."""
        scheme = DaEScheme(config)
        for i in range(50):
            r = scheme.handle_write(wreq(i * 64, LINE, t=i * 500.0))
            assert not r.deduplicated
        assert scheme.write_reduction() == 0.0

    def test_data_still_correct(self, config):
        scheme = DaEScheme(config)
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, LINE, t=500.0))
        assert scheme.handle_read(rreq(0, t=1000.0)).data == LINE
        assert scheme.handle_read(rreq(64, t=1500.0)).data == LINE

    def test_pays_both_hash_and_encryption(self, config):
        scheme = DaEScheme(config)
        scheme.handle_write(wreq(0, LINE))
        assert scheme.crypto_energy.get(EnergyCategory.FINGERPRINT) > 0
        assert scheme.crypto_energy.get(EnergyCategory.ENCRYPTION) > 0


class TestPDE:
    def test_factory(self, config):
        assert isinstance(make_scheme("PDE", config), PDEScheme)

    def test_dedups_like_full_dedup(self, config):
        scheme = PDEScheme(config)
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(64, LINE, t=500.0))
        assert r.deduplicated
        assert scheme.handle_read(rreq(64, t=1000.0)).data == LINE

    def test_duplicate_wastes_encryption_energy(self, config):
        scheme = PDEScheme(config)
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, LINE, t=500.0))
        # Both writes paid encryption energy even though one was deduped.
        assert scheme.counters.get("wasted_encryptions") == 1
        assert scheme.crypto_energy.get(EnergyCategory.ENCRYPTION) == \
            pytest.approx(2 * scheme.crypto.encrypt_energy_nj)

    def test_energy_exceeds_esd(self, config):
        """PDE's rejection ground: it burns hash+encryption on every line."""
        from repro.workloads import TraceGenerator
        trace = TraceGenerator("gcc", seed=3).generate_list(2_000)
        pde = make_scheme("PDE", config)
        esd = make_scheme("ESD", config)
        for req in trace:
            if req.is_write:
                pde.handle_write(req)
                esd.handle_write(req)
        assert (pde.total_energy().total_nj()
                > esd.total_energy().total_nj())

    def test_latency_better_than_serial_sha1(self, config):
        """The hash overlaps encryption, so PDE beats serial Dedup_SHA1."""
        from repro.workloads import TraceGenerator
        trace = TraceGenerator("gcc", seed=3).generate_list(2_000)
        pde = make_scheme("PDE", config)
        sha1 = make_scheme("Dedup_SHA1", config)
        pde_total = sha1_total = 0.0
        for req in trace:
            if req.is_write:
                pde_total += pde.handle_write(req).latency_ns
                sha1_total += sha1.handle_write(req).latency_ns
        assert pde_total < sha1_total


class TestIntegrity:
    @pytest.mark.parametrize("scheme_name", ["DaE", "PDE"])
    def test_no_data_loss(self, config, scheme_name):
        from repro.sim import SimulationEngine
        from repro.workloads import TraceGenerator
        trace = TraceGenerator("lbm", seed=5).generate_list(2_000)
        engine = SimulationEngine(make_scheme(scheme_name, config))
        engine.run(iter(trace), app="lbm", total_hint=len(trace))
