"""Tests for the simulation engine (throttling, warm-up, integrity)."""

import pytest

from repro.common.errors import IntegrityError
from repro.common.types import AccessType, MemoryRequest
from repro.dedup import make_scheme
from repro.sim.engine import EngineConfig, SimulationEngine


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_outstanding=0)
        with pytest.raises(ValueError):
            EngineConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError):
            EngineConfig(max_latency_samples=0)


class TestRun:
    def test_counts_post_warmup_requests(self, config, small_trace):
        engine = SimulationEngine(make_scheme("Baseline", config),
                                  EngineConfig(warmup_fraction=0.5))
        result = engine.run(iter(small_trace), app="gcc",
                            total_hint=len(small_trace))
        recorded = result.writes + result.reads
        assert recorded == len(small_trace) - len(small_trace) // 2

    def test_zero_warmup_records_everything(self, config, small_trace):
        engine = SimulationEngine(make_scheme("Baseline", config),
                                  EngineConfig(warmup_fraction=0.0))
        result = engine.run(iter(small_trace), app="gcc",
                            total_hint=len(small_trace))
        assert result.writes + result.reads == len(small_trace)

    def test_result_fields_populated(self, config, small_trace):
        engine = SimulationEngine(make_scheme("ESD", config))
        result = engine.run(iter(small_trace), app="gcc",
                            total_hint=len(small_trace))
        assert result.app == "gcc"
        assert result.scheme == "ESD"
        assert result.mean_write_latency_ns > 0
        assert result.mean_read_latency_ns > 0
        assert result.total_energy_nj > 0
        assert result.ipc > 0
        assert result.metadata is not None
        assert "efit_hit_rate" in result.extras

    def test_dedup_reduces_pcm_writes(self, config, write_heavy_trace):
        base = SimulationEngine(make_scheme("Baseline", config)).run(
            iter(write_heavy_trace), app="lbm",
            total_hint=len(write_heavy_trace))
        esd = SimulationEngine(make_scheme("ESD", config)).run(
            iter(write_heavy_trace), app="lbm",
            total_hint=len(write_heavy_trace))
        assert esd.pcm_data_writes < base.pcm_data_writes

    def test_throttling_bounds_latency_growth(self, config):
        """A tiny outstanding window keeps latencies near service times."""
        from repro.workloads import TraceGenerator
        trace = TraceGenerator("lbm", seed=3).generate_list(2_000)
        tight = SimulationEngine(
            make_scheme("Dedup_SHA1", config),
            EngineConfig(max_outstanding=4)).run(
                iter(trace), app="lbm", total_hint=len(trace))
        loose = SimulationEngine(
            make_scheme("Dedup_SHA1", config),
            EngineConfig(max_outstanding=100_000)).run(
                iter(trace), app="lbm", total_hint=len(trace))
        assert tight.mean_write_latency_ns <= loose.mean_write_latency_ns


class TestIntegrity:
    def test_detects_corrupting_scheme(self, config):
        """A deliberately broken scheme must trip the integrity check."""
        scheme = make_scheme("Baseline", config)
        original = scheme.handle_read

        def corrupted_read(request):
            result = original(request)
            from repro.dedup.base import ReadResult
            bad = bytes(64) if result.data != bytes(64) else b"\x01" * 64
            return ReadResult(data=bad, completion_ns=result.completion_ns,
                              latency_ns=result.latency_ns)

        scheme.handle_read = corrupted_read
        requests = [
            MemoryRequest(address=0, access=AccessType.WRITE,
                          data=bytes(range(64)), issue_time_ns=0.0, seq=1),
            MemoryRequest(address=0, access=AccessType.READ,
                          issue_time_ns=1000.0, seq=2),
        ]
        engine = SimulationEngine(scheme, EngineConfig(warmup_fraction=0.0))
        with pytest.raises(IntegrityError):
            engine.run(iter(requests), app="x")

    @pytest.mark.parametrize("scheme_name",
                             ["Baseline", "Dedup_SHA1", "DeWrite", "ESD"])
    def test_all_schemes_pass_integrity(self, config, small_trace,
                                        scheme_name):
        engine = SimulationEngine(make_scheme(scheme_name, config))
        engine.run(iter(small_trace), app="gcc",
                   total_hint=len(small_trace))  # raises on violation
