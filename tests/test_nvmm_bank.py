"""Tests for bank-level earliest-fit scheduling and the row buffer."""

import pytest

from repro.nvmm.bank import Bank


class TestBasicService:
    def test_idle_bank_serves_immediately(self):
        bank = Bank(index=0)
        s = bank.service(100.0, 75.0)
        assert s.start_ns == 100.0
        assert s.completion_ns == 175.0
        assert s.latency_ns == 75.0
        assert s.queue_delay_ns == 0.0

    def test_busy_bank_queues(self):
        bank = Bank(index=0)
        bank.service(0.0, 150.0)
        s = bank.service(50.0, 75.0)
        assert s.start_ns == 150.0
        assert s.queue_delay_ns == 100.0

    def test_busy_time_accumulates(self):
        bank = Bank(index=0)
        bank.service(0.0, 150.0)
        bank.service(0.0, 75.0)
        assert bank.busy_time_ns == 225.0
        assert bank.services == 2

    def test_negative_times_rejected(self):
        bank = Bank(index=0)
        with pytest.raises(ValueError):
            bank.service(-1.0, 10.0)
        with pytest.raises(ValueError):
            bank.service(0.0, -1.0)


class TestEarliestFit:
    def test_gap_filling(self):
        """An access arriving before a future-scheduled op fills the gap."""
        bank = Bank(index=0)
        # An op scheduled far in the future (delayed request chain).
        bank.service(1000.0, 150.0)
        # An earlier-arriving op processed later must NOT queue behind it.
        s = bank.service(100.0, 75.0)
        assert s.start_ns == 100.0
        assert s.completion_ns == 175.0

    def test_gap_too_small(self):
        bank = Bank(index=0)
        bank.service(0.0, 100.0)       # [0, 100)
        bank.service(150.0, 100.0)     # [150, 250)
        # Needs 75ns starting at 90: gap [100,150) is only 50ns -> goes after.
        s = bank.service(90.0, 75.0)
        assert s.start_ns == 250.0

    def test_exact_fit_gap(self):
        bank = Bank(index=0)
        bank.service(0.0, 100.0)       # [0, 100)
        bank.service(200.0, 100.0)     # [200, 300)
        s = bank.service(100.0, 100.0)  # exactly fills [100, 200)
        assert s.start_ns == 100.0
        assert s.completion_ns == 200.0

    def test_busy_until_tracks_last_interval(self):
        bank = Bank(index=0)
        bank.service(0.0, 50.0)
        bank.service(500.0, 50.0)
        assert bank.busy_until_ns == 550.0

    def test_queue_delay_probe(self):
        bank = Bank(index=0)
        bank.service(0.0, 100.0)
        assert bank.queue_delay(50.0) == 50.0
        assert bank.queue_delay(200.0) == 0.0

    def test_no_overlapping_intervals(self):
        bank = Bank(index=0)
        services = []
        import random
        rnd = random.Random(5)
        for _ in range(300):
            services.append(bank.service(rnd.uniform(0, 1000),
                                         rnd.choice([15.0, 75.0, 150.0])))
        spans = sorted((s.start_ns, s.completion_ns) for s in services)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-9  # non-overlapping

    def test_pruning_keeps_scheduling_correct(self):
        bank = Bank(index=0, prune_margin_ns=10_000.0)
        t = 0.0
        for i in range(10_000):
            s = bank.service(t, 10.0)
            t = s.completion_ns
        # Internal interval list stays bounded.
        assert len(bank._intervals) < 9_000


class TestRowBuffer:
    def test_first_access_misses(self):
        bank = Bank(index=0)
        assert bank.access_row(("data", 1)) is False

    def test_repeat_access_hits(self):
        bank = Bank(index=0)
        bank.access_row(("data", 1))
        assert bank.access_row(("data", 1)) is True
        assert bank.row_hits == 1

    def test_conflicting_row_replaces(self):
        bank = Bank(index=0)
        bank.access_row(("data", 1))
        assert bank.access_row(("data", 2)) is False
        assert bank.access_row(("data", 1)) is False  # evicted earlier
        assert bank.row_misses == 3

    def test_metadata_and_data_rows_distinct(self):
        bank = Bank(index=0)
        bank.access_row(("data", 5))
        assert bank.access_row(("meta", 5)) is False
