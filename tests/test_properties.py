"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.types import CACHE_LINE_SIZE, AccessType, MemoryRequest
from repro.core.lrcu import LRCUCache
from repro.crypto.counter_mode import CounterModeEngine
from repro.dedup import make_scheme
from repro.ecc.codec import decode_line, line_ecc
from repro.ecc.faults import flip_bits
from repro.nvmm.allocator import FrameAllocator
from repro.nvmm.bank import Bank
from repro.workloads.trace import roundtrip_bytes

LINES = st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE)


class TestECCProperties:
    @given(LINES, st.sets(st.integers(0, 7), min_size=1, max_size=8),
           st.data())
    @settings(max_examples=80)
    def test_one_flip_per_word_always_recovers(self, line, words, data):
        bits = [w * 64 + data.draw(st.integers(0, 63), label=f"bit{w}")
                for w in sorted(words)]
        ecc = line_ecc(line)
        corrupted = flip_bits(line, bits)
        result = decode_line(corrupted, ecc)
        assert result.data == line
        assert set(result.corrected_words) == words

    @given(LINES, LINES)
    @settings(max_examples=80)
    def test_equal_lines_equal_ecc(self, a, b):
        if a == b:
            assert line_ecc(a) == line_ecc(b)


class TestCounterModeProperties:
    @given(st.lists(st.tuples(LINES, st.integers(0, 63)),
                    min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_interleaved_writes_always_decrypt(self, operations):
        engine = CounterModeEngine()
        latest = {}
        for plaintext, frame in operations:
            engine.encrypt(plaintext, frame)
            latest[frame] = plaintext
        for frame, plaintext in latest.items():
            # Re-derive ciphertext from the engine's device-facing view:
            # the last encrypt wrote with the current counter.
            enc = engine.encrypt(plaintext, frame)  # fresh write
            assert engine.decrypt_at(enc.ciphertext, frame) == plaintext


class TestLRCUProperties:
    @given(st.lists(st.tuples(st.integers(0, 40), st.booleans()),
                    min_size=1, max_size=300),
           st.integers(2, 16))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_capacity_and_consistency(self, operations, capacity):
        cache = LRCUCache(capacity=capacity, decay_period=16)
        for key, should_touch in operations:
            if should_touch and key in cache:
                cache.touch(key)
            else:
                cache.put(key, key * 2)
            assert len(cache) <= capacity
        for key, value, count in cache.items():
            assert value == key * 2
            assert 1 <= count <= cache.max_count

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_most_referenced_key_survives(self, keys):
        """A key touched on every step is never evicted under LRCU."""
        cache = LRCUCache(capacity=4, decay_period=0)
        cache.put("vip", 0)
        for key in keys:
            cache.touch("vip")
            if ("k", key) in cache:
                cache.touch(("k", key))
            else:
                cache.put(("k", key), key)
        assert "vip" in cache


class TestAllocatorProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=60)
    def test_no_double_allocation(self, ops):
        alloc = FrameAllocator(32)
        live = set()
        for do_alloc in ops:
            if do_alloc and alloc.free_count:
                frame = alloc.allocate()
                assert frame not in live
                live.add(frame)
            elif live:
                frame = live.pop()
                alloc.free(frame)
        assert alloc.allocated_count == len(live)


class TestBankProperties:
    @given(st.lists(st.tuples(st.floats(0, 10_000), st.sampled_from(
        [15.0, 75.0, 150.0])), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_services_never_overlap_and_never_early(self, ops):
        bank = Bank(index=0)
        spans = []
        for arrival, duration in ops:
            s = bank.service(arrival, duration)
            assert s.start_ns >= arrival
            assert s.completion_ns == s.start_ns + duration
            spans.append((s.start_ns, s.completion_ns))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-6


class TestTraceProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000), st.booleans(), LINES),
                    min_size=0, max_size=50))
    @settings(max_examples=40)
    def test_serialization_roundtrip(self, specs):
        requests = []
        for seq, (line, is_write, data) in enumerate(specs):
            if is_write:
                requests.append(MemoryRequest(
                    address=line * 64, access=AccessType.WRITE, data=data,
                    issue_time_ns=float(seq), seq=seq))
            else:
                requests.append(MemoryRequest(
                    address=line * 64, access=AccessType.READ,
                    issue_time_ns=float(seq), seq=seq))
        restored = roundtrip_bytes(requests)
        assert [(r.address, r.access, r.data) for r in requests] == \
               [(r.address, r.access, r.data) for r in restored]


class TestSchemeProperties:
    """Dedup safety as a property: random write/read interleavings."""

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 5),
                              st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @pytest.mark.parametrize("scheme_name",
                             ["Dedup_SHA1", "DeWrite", "ESD"])
    def test_reads_always_return_last_write(self, scheme_name, ops):
        from repro.common import small_test_config
        scheme = make_scheme(scheme_name, small_test_config())
        contents = [bytes([i]) * CACHE_LINE_SIZE for i in range(6)]
        shadow = {}
        t = 0.0
        for line, content_idx, is_write in ops:
            t += 200.0
            addr = line * 64
            if is_write:
                data = contents[content_idx]
                scheme.handle_write(MemoryRequest(
                    address=addr, access=AccessType.WRITE, data=data,
                    issue_time_ns=t))
                shadow[addr] = data
            elif addr in shadow:
                result = scheme.handle_read(MemoryRequest(
                    address=addr, access=AccessType.READ, issue_time_ns=t))
                assert result.data == shadow[addr]
