"""Tests for the content-addressed result store."""

import json

import pytest

from repro.common import small_test_config
from repro.sim.export import result_to_dict, result_to_state, result_from_state
from repro.sim.runner import run_app
from repro.sweep import ResultStore, job_meta, JobSpec
from repro.workloads import TraceGenerator


@pytest.fixture(scope="module")
def result():
    """One real simulated result (module-scoped: simulation is the cost)."""
    out = run_app("gcc", ["ESD"], requests=1_200,
                  system=small_test_config(), seed=7)
    return out["ESD"]


class TestStateRoundTrip:
    def test_reporting_view_is_bit_identical(self, result):
        state = json.loads(json.dumps(result_to_state(result)))
        restored = result_from_state(state)
        assert result_to_dict(restored) == result_to_dict(result)

    def test_latency_internals_survive(self, result):
        restored = result_from_state(
            json.loads(json.dumps(result_to_state(result))))
        assert restored.write_latency.samples() \
            == result.write_latency.samples()
        assert restored.write_latency.stddev_ns \
            == result.write_latency.stddev_ns
        assert restored.write_cdf(points=50) == result.write_cdf(points=50)

    def test_reservoir_rng_continues_identically(self, result):
        restored = result_from_state(
            json.loads(json.dumps(result_to_state(result))))
        restored.write_latency.add(123.0)
        result.write_latency.add(123.0)
        assert restored.write_latency.samples() \
            == result.write_latency.samples()

    def test_unknown_version_rejected(self, result):
        state = result_to_state(result)
        state["version"] = 999
        with pytest.raises(ValueError):
            result_from_state(state)


class TestResultStore:
    def test_miss_then_hit(self, tmp_path, result):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        store.put("0" * 64, result)
        hit = store.get("0" * 64)
        assert hit is not None
        assert result_to_dict(hit) == result_to_dict(result)
        assert "0" * 64 in store
        assert len(store) == 1

    def test_energy_sum_identical_after_round_trip(self, tmp_path, result):
        # Float addition is order-sensitive; the store must preserve the
        # energy dict's insertion order so derived sums match exactly.
        store = ResultStore(tmp_path)
        store.put("e" * 64, result)
        assert store.get("e" * 64).total_energy_nj == result.total_energy_nj

    def test_corrupt_row_reads_as_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        path = store.put("f" * 64, result)
        path.write_text("{not json")
        assert store.get("f" * 64) is None
        path.write_text(json.dumps({"result": {"version": 999}}))
        assert store.get("f" * 64) is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put("a" * 64, result)
        assert [p.name for p in store.results_dir.iterdir()] \
            == [f"{'a' * 64}.json"]

    def test_job_meta_header_persisted(self, tmp_path, result):
        store = ResultStore(tmp_path)
        spec = JobSpec(app="gcc", scheme="ESD", requests=1_200, seed=7,
                       system=small_test_config())
        path = store.put(spec.digest(), result, job=job_meta(spec))
        payload = json.loads(path.read_text())
        assert payload["job"]["app"] == "gcc"
        assert payload["job"]["digest"] == spec.digest()

    def test_manifest_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.read_manifest() is None
        store.write_manifest({"total_jobs": 4})
        assert store.read_manifest() == {"total_jobs": 4}


class TestTraceSharing:
    def test_trace_generated_once_and_replayed_exactly(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def generate():
            calls.append(1)
            return TraceGenerator("gcc", seed=7).generate_list(500)

        path1 = store.ensure_trace("gcc-s7-n500-v1", generate)
        path2 = store.ensure_trace("gcc-s7-n500-v1", generate)
        assert path1 == path2
        assert len(calls) == 1
        replayed = store.load_trace("gcc-s7-n500-v1")
        original = TraceGenerator("gcc", seed=7).generate_list(500)
        assert len(replayed) == len(original)
        assert all(a.address == b.address and a.data == b.data
                   and a.issue_time_ns == b.issue_time_ns
                   for a, b in zip(replayed, original))
