"""Tests for repro.common.units."""

import pytest

from repro.common.units import (
    gib,
    human_bytes,
    is_power_of_two,
    kib,
    mib,
    ms,
    nj,
    ns,
    pj,
    seconds,
    to_mj,
    to_ms,
    to_us,
    us,
)


class TestTime:
    def test_identity_ns(self):
        assert ns(75) == 75.0

    def test_us(self):
        assert us(1.5) == 1500.0

    def test_ms(self):
        assert ms(2) == 2_000_000.0

    def test_seconds(self):
        assert seconds(1) == 1e9

    def test_roundtrip(self):
        assert to_us(us(3.25)) == pytest.approx(3.25)
        assert to_ms(ms(0.4)) == pytest.approx(0.4)


class TestEnergy:
    def test_nj(self):
        assert nj(6.75) == 6.75

    def test_pj(self):
        assert pj(500) == pytest.approx(0.5)

    def test_to_mj(self):
        assert to_mj(nj(2_000_000)) == pytest.approx(2.0)


class TestCapacity:
    def test_kib(self):
        assert kib(512) == 512 * 1024

    def test_mib(self):
        assert mib(16) == 16 * 1024 * 1024

    def test_gib(self):
        assert gib(16) == 16 * 1024 ** 3

    def test_fractional(self):
        assert kib(0.5) == 512


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(37) == "37 B"

    def test_kib(self):
        assert human_bytes(512 * 1024) == "512.0 KiB"

    def test_mib(self):
        assert human_bytes(16 * 1024 * 1024) == "16.0 MiB"

    def test_tib(self):
        assert human_bytes(64 * 1024 ** 4) == "64.0 TiB"


class TestIsPowerOfTwo:
    def test_powers(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -2, 3, 6, 12, 100):
            assert not is_power_of_two(n)
