"""Fast-path parity tests: the memoized kernels must be bit-identical to
the reference implementations, and memo caches must never mask injected
faults.

These are the soundness tests for :mod:`repro.perf` — every memoized or
rewritten kernel is checked against its uncached/reference form, and the
end-to-end check runs every registered scheme with the fast path off and
on and demands byte-identical summary rows.
"""

import io
import random
from dataclasses import replace

import pytest

from repro.common.errors import UncorrectableError
from repro.crypto.counter_mode import (
    CounterModeEngine,
    _xor_line,
    _xor_line_reference,
)
from repro.ecc import hamming
from repro.ecc.codec import (
    decode_line,
    decode_line_uncached,
    line_ecc,
    line_ecc_uncached,
)
from repro.ecc.faults import flip_bit, flip_bits
from repro.perf import fastpath, memo, reset_caches
from repro.registry import registered_scheme_names
from repro.sim.runner import run_app, scaled_system_config
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import read_trace_list, write_trace


@pytest.fixture(autouse=True)
def _fastpath_on_and_cold():
    """Run each test with the fast path on and cold caches; restore after."""
    previous = memo.ENABLED
    memo.ENABLED = True
    memo.reset_all()
    yield
    memo.ENABLED = previous
    memo.reset_all()


def _random_lines(count, seed=0xE5D):
    rng = random.Random(seed)
    return [rng.randbytes(64) for _ in range(count)]


class TestFaultInjectionNeverMasked:
    """Memo caches keyed on ``(data, ecc)`` can never serve a clean decode
    for a corrupted line — warm the cache with clean entries first, then
    inject faults and compare against the uncached codec bit-for-bit."""

    def test_single_bit_fault_after_warm_cache(self):
        rng = random.Random(1)
        for data in _random_lines(16, seed=2):
            ecc = line_ecc(data)
            # Warm the clean decode (now cached under (data, ecc)).
            assert decode_line(data, ecc).data == data
            corrupt = flip_bit(data, rng.randrange(512))
            got = decode_line(corrupt, ecc)
            want = decode_line_uncached(corrupt, ecc)
            assert got.data == want.data == data  # corrected back
            assert got.corrected_words == want.corrected_words
            assert got.corrected

    def test_double_bit_fault_raises_despite_warm_cache(self):
        data = _random_lines(1, seed=3)[0]
        ecc = line_ecc(data)
        decode_line(data, ecc)  # warm the clean entry
        word = 2
        corrupt = flip_bits(data, [word * 64 + 5, word * 64 + 40])
        with pytest.raises(UncorrectableError) as excinfo:
            decode_line(corrupt, ecc)
        assert excinfo.value.word_index == word
        with pytest.raises(UncorrectableError):
            decode_line_uncached(corrupt, ecc)
        # Raising decodes are never cached: the corrupt key must re-raise.
        with pytest.raises(UncorrectableError):
            decode_line(corrupt, ecc)

    def test_fault_campaign_matches_uncached(self):
        rng = random.Random(4)
        for data in _random_lines(8, seed=5):
            ecc = line_ecc_uncached(data)
            for _ in range(8):
                corrupt = flip_bits(
                    data, rng.sample(range(512), rng.choice([1, 1, 1, 2])))
                try:
                    want = decode_line_uncached(corrupt, ecc)
                except UncorrectableError:
                    with pytest.raises(UncorrectableError):
                        decode_line(corrupt, ecc)
                else:
                    got = decode_line(corrupt, ecc)
                    assert got.data == want.data
                    assert got.corrected_words == want.corrected_words


class TestKernelParity:
    def test_line_ecc_matches_uncached(self):
        for data in _random_lines(32):
            assert line_ecc(data) == line_ecc_uncached(data)
            assert line_ecc(data) == line_ecc_uncached(data)  # cached hit

    def test_encode_word_on_off_parity(self):
        rng = random.Random(6)
        words = [0, 1, (1 << 64) - 1] + [rng.getrandbits(64)
                                         for _ in range(200)]
        for word in words:
            with fastpath(True):
                fast = hamming.encode_word(word)
            with fastpath(False):
                ref = hamming.encode_word(word)
            assert fast == ref

    def test_syndrome_matches_reference(self):
        rng = random.Random(7)
        for _ in range(200):
            word = rng.getrandbits(64)
            ecc = hamming.encode_word(word)
            # Intact, single-bit data error, and corrupted-ECC cases.
            cases = [(word, ecc),
                     (word ^ (1 << rng.randrange(64)), ecc),
                     (word, ecc ^ (1 << rng.randrange(8)))]
            for w, e in cases:
                with fastpath(True):
                    fast = hamming.syndrome(w, e)
                with fastpath(False):
                    ref = hamming.syndrome(w, e)
                assert fast == ref == hamming.syndrome_reference(w, e)

    def test_xor_line_matches_reference(self):
        lines = _random_lines(8, seed=8)
        for a, b in zip(lines[::2], lines[1::2]):
            with fastpath(True):
                fast = _xor_line(a, b)
            assert fast == _xor_line_reference(a, b)

    def test_counter_mode_roundtrip_on_off_parity(self):
        plaintexts = _random_lines(8, seed=9)
        ciphers = {}
        for enabled in (False, True):
            with fastpath(enabled):
                reset_caches()
                engine = CounterModeEngine()
                out = []
                for i, pt in enumerate(plaintexts):
                    enc = engine.encrypt(pt, i)
                    assert engine.decrypt_at(enc.ciphertext, i) == pt
                    out.append((enc.ciphertext, enc.counter))
                ciphers[enabled] = out
        assert ciphers[False] == ciphers[True]

    def test_trace_roundtrip_on_off_parity(self):
        requests = TraceGenerator("gcc", seed=7).generate_list(500)
        streams = {}
        for enabled in (False, True):
            with fastpath(enabled):
                buffer = io.BytesIO()
                write_trace(requests, buffer)
                streams[enabled] = buffer.getvalue()
                buffer.seek(0)
                assert read_trace_list(buffer) == requests
        assert streams[False] == streams[True]


class TestEndToEndParity:
    """Fast-on vs fast-off summary rows, bit-exact, for every registered
    scheme (the same gate `benchmarks/perf_smoke.py` enforces in CI on the
    evaluation grid)."""

    REQUESTS = 600

    def _rows(self, fast):
        system = replace(scaled_system_config(), use_fastpath=fast)
        results = run_app("gcc", registered_scheme_names(),
                          requests=self.REQUESTS, system=system, seed=7)
        return {name: r.summary_row() for name, r in results.items()}

    def test_summary_rows_bit_exact_across_all_schemes(self):
        rows_off = self._rows(fast=False)
        rows_on = self._rows(fast=True)
        assert set(rows_off) == set(registered_scheme_names())
        assert rows_off == rows_on

    def test_extras_export_cache_stats(self):
        system_on = replace(scaled_system_config(), use_fastpath=True)
        result = run_app("gcc", ["ESD"], requests=self.REQUESTS,
                         system=system_on, seed=7)["ESD"]
        assert result.extras["fastpath_enabled"] == 1.0
        memo_keys = [k for k in result.extras if k.startswith("memo_")]
        assert memo_keys, "fast-path run must export memo cache stats"
        # Counters come in complete (hits, misses, evictions, size) groups.
        assert any(k.endswith("_hits") for k in memo_keys)
        assert any(k.endswith("_misses") for k in memo_keys)

    def test_extras_flag_off_without_stats(self):
        system_off = replace(scaled_system_config(), use_fastpath=False)
        result = run_app("gcc", ["ESD"], requests=self.REQUESTS,
                         system=system_off, seed=7)["ESD"]
        assert result.extras["fastpath_enabled"] == 0.0
        assert not [k for k in result.extras if k.startswith("memo_")]
