"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.common import small_test_config
from repro.workloads import TraceGenerator


@pytest.fixture
def config():
    """A scaled-down system configuration for fast tests."""
    return small_test_config()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def random_line(rng):
    """One random 64-byte cache line."""
    return rng.integers(0, 256, 64, dtype=np.uint8).tobytes()


@pytest.fixture
def small_trace():
    """A short gcc trace shared by scheme tests."""
    return TraceGenerator("gcc", seed=7).generate_list(3_000)


@pytest.fixture
def write_heavy_trace():
    """A short, duplicate-rich trace (lbm profile)."""
    return TraceGenerator("lbm", seed=7).generate_list(3_000)
