"""Tests for the split-counter (major/minor) encryption organization."""

import pytest

from repro.common.errors import ConfigError
from repro.crypto.split_counters import (
    SplitCounterConfig,
    SplitCounterModeEngine,
    SplitCounterTable,
)

LINE_A = bytes(range(64))
LINE_B = b"\x3C" * 64


class TestConfig:
    def test_defaults(self):
        cfg = SplitCounterConfig()
        assert cfg.minor_bits == 7
        assert cfg.minor_max == 127

    def test_metadata_cost(self):
        cfg = SplitCounterConfig(minor_bits=7, major_bits=64,
                                 lines_per_page=64)
        assert cfg.metadata_bits_per_line() == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SplitCounterConfig(minor_bits=0)
        with pytest.raises(ConfigError):
            SplitCounterConfig(major_bits=4)


class TestTable:
    def test_fresh_state(self):
        table = SplitCounterTable()
        assert table.current(5) == (1, 0)

    def test_advance(self):
        table = SplitCounterTable()
        assert table.advance(5) == (1, 1)
        assert table.advance(5) == (1, 2)
        assert table.current(5) == (1, 2)

    def test_lines_share_page_major(self):
        table = SplitCounterTable()
        table.advance(0)
        table.advance(1)
        assert table.current(0)[0] == table.current(1)[0] == 1

    def test_minor_overflow_bumps_major_and_resets(self):
        cfg = SplitCounterConfig(minor_bits=2)  # minor_max = 3
        events = []
        table = SplitCounterTable(cfg, on_page_reencrypt=lambda p, ls:
                                  events.append((p, ls)))
        table.advance(1)  # another line in the page, to be re-encrypted
        for _ in range(3):
            table.advance(0)
        major, minor = table.advance(0)  # overflow
        assert (major, minor) == (2, 1)
        assert table.page_reencryptions == 1
        assert events == [(0, [1])]
        # The sibling line's minor was reset.
        assert table.current(1) == (2, 0)

    def test_metadata_bytes(self):
        table = SplitCounterTable(SplitCounterConfig())
        table.advance(0)
        table.advance(100)  # second page
        assert table.touched_pages() == 2
        assert table.metadata_bytes(num_lines_touched=2) == \
            (2 * 64 + 2 * 7 + 7) // 8


class TestEngine:
    def test_roundtrip(self):
        engine = SplitCounterModeEngine()
        engine.encrypt(LINE_A, 10)
        assert engine.decrypt(10) == LINE_A

    def test_freshness(self):
        engine = SplitCounterModeEngine()
        ct1 = engine.encrypt(LINE_A, 10)
        ct2 = engine.encrypt(LINE_A, 10)
        assert ct1 != ct2
        assert engine.decrypt(10) == LINE_A

    def test_unwritten_reads_zero(self):
        assert SplitCounterModeEngine().decrypt(3) == bytes(64)

    def test_overflow_reencrypts_page_and_stays_correct(self):
        cfg = SplitCounterConfig(minor_bits=2)  # overflow after 3 writes
        engine = SplitCounterModeEngine(config=cfg)
        # Two lines in page 0.
        engine.encrypt(LINE_B, 1)
        for i in range(4):  # 4th write to line 0 overflows its minor
            engine.encrypt(LINE_A, 0)
        assert engine.counters.page_reencryptions == 1
        assert engine.overflow_writes >= 1
        # Both lines still decrypt correctly under the new major.
        assert engine.decrypt(0) == LINE_A
        assert engine.decrypt(1) == LINE_B

    def test_many_overflows_remain_consistent(self):
        cfg = SplitCounterConfig(minor_bits=1)  # overflow constantly
        engine = SplitCounterModeEngine(config=cfg)
        lines = {0: LINE_A, 1: LINE_B, 2: bytes(64), 63: b"\x7E" * 64}
        for step in range(60):
            for line, data in lines.items():
                engine.encrypt(data, line)
        for line, data in lines.items():
            assert engine.decrypt(line) == data
        assert engine.counters.page_reencryptions > 10

    def test_key_length_check(self):
        with pytest.raises(ValueError):
            SplitCounterModeEngine(key=b"short")

    def test_narrow_minor_means_more_overflow_writes(self):
        """The geometry trade-off: fewer minor bits, more re-encryption."""
        def run(minor_bits):
            engine = SplitCounterModeEngine(
                config=SplitCounterConfig(minor_bits=minor_bits))
            for step in range(300):
                engine.encrypt(LINE_A, step % 8)
            return engine.overflow_writes
        assert run(3) > run(7)
