"""Parity gate for the incremental session API (ISSUE 7 tentpole).

``SimulationEngine.run`` is reimplemented on top of
``open_session``/``feed``/``finalize``; these tests prove the refactor's
contract: feeding a trace incrementally — any chunk size, including the
vec-epoch boundary sizes — produces a ``SimulationResult`` bit-identical
to a one-shot ``run()`` of the same trace, for every registered scheme,
on the reference path, the kernel-fast path, and the vectorized path.

Bit-identical means the full lossless state snapshot
(:func:`repro.sim.export.result_to_state`) compares equal: every raw
latency sample, every float accumulator, every counter, every extra.
"""

from dataclasses import replace

import pytest

from repro.common.errors import SessionError
from repro.registry import make_scheme, registered_scheme_names
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.export import result_to_state
from repro.sim.runner import scaled_system_config
from repro.workloads.generator import TraceGenerator

#: (mode name, use_fastpath, use_vectorized) — the three engine loops.
MODES = [
    ("reference", False, False),
    ("fast", True, False),
    ("vec", True, True),
]


def _engine(scheme_name: str, fast: bool, vec: bool) -> SimulationEngine:
    config = replace(scaled_system_config(),
                     use_fastpath=fast, use_vectorized=vec)
    return SimulationEngine(make_scheme(scheme_name, config),
                            EngineConfig())


def _trace(n: int, app: str = "gcc", seed: int = 31):
    return TraceGenerator(app, seed=seed).generate_list(n)


def _session_state(scheme_name: str, fast: bool, vec: bool, trace,
                   chunk: int):
    """Run the trace through feed() in ``chunk``-sized pieces."""
    engine = _engine(scheme_name, fast, vec)
    session = engine.open_session(app="gcc", total_hint=len(trace))
    for start in range(0, len(trace), chunk):
        session.feed(trace[start:start + chunk])
    return result_to_state(session.finalize()), session


def _run_state(scheme_name: str, fast: bool, vec: bool, trace):
    engine = _engine(scheme_name, fast, vec)
    return result_to_state(engine.run(iter(trace), app="gcc",
                                      total_hint=len(trace)))


@pytest.mark.parametrize("mode,fast,vec", MODES,
                         ids=[m[0] for m in MODES])
@pytest.mark.parametrize("scheme_name", registered_scheme_names())
def test_incremental_feed_matches_run(scheme_name, mode, fast, vec):
    """All 8 schemes x all 3 loops: chunked feed == one-shot run."""
    trace = _trace(700)
    expected = _run_state(scheme_name, fast, vec, trace)
    state, _ = _session_state(scheme_name, fast, vec, trace, chunk=333)
    assert state == expected


@pytest.mark.parametrize("chunk", [1023, 1024, 1025],
                         ids=["epoch-1", "epoch", "epoch+1"])
@pytest.mark.parametrize("scheme_name", ["ESD", "Dedup_SHA1"])
def test_epoch_boundary_chunks(scheme_name, chunk):
    """Vectorized path: feed chunks straddling the epoch size must
    reproduce iter_epochs' boundaries exactly (2.5+ epochs of trace)."""
    trace = _trace(2600, seed=7)
    expected = _run_state(scheme_name, True, True, trace)
    state, _ = _session_state(scheme_name, True, True, trace, chunk=chunk)
    assert state == expected


@pytest.mark.parametrize("chunk", [1, 64])
def test_tiny_chunks_reference_and_vec(chunk):
    """Degenerate chunk sizes (per-request feeding) stay bit-exact."""
    trace = _trace(300, seed=5)
    for _, fast, vec in MODES:
        expected = _run_state("ESD", fast, vec, trace)
        state, _ = _session_state("ESD", fast, vec, trace, chunk=chunk)
        assert state == expected


def test_empty_session_matches_empty_run():
    trace = []
    for _, fast, vec in MODES:
        engine = _engine("ESD", fast, vec)
        session = engine.open_session(app="gcc", total_hint=0)
        state = result_to_state(session.finalize())
        assert state == _run_state("ESD", fast, vec, trace)


def test_session_lifecycle_errors():
    engine = _engine("ESD", True, True)
    session = engine.open_session(app="gcc", total_hint=100)
    session.feed(_trace(10))
    session.finalize()
    assert session.state == "finalized"
    with pytest.raises(SessionError):
        session.feed(_trace(10))
    with pytest.raises(SessionError):
        session.finalize()


def test_closed_session_rejects_feed():
    engine = _engine("ESD", True, False)
    session = engine.open_session(app="gcc")
    session.close()
    assert session.state == "closed"
    with pytest.raises(SessionError):
        session.feed(_trace(5))
    # close() is idempotent and leaves terminal states alone.
    session.close()
    assert session.state == "closed"


def test_vectorized_session_buffers_partial_epoch():
    """Sub-epoch feeds stay buffered until finalize releases the tail."""
    trace = _trace(600, seed=9)
    engine = _engine("ESD", True, True)
    session = engine.open_session(app="gcc", total_hint=len(trace))
    session.feed(trace)
    # 600 < epoch size (1024): everything is still pending.
    assert session.processed == 0
    assert session.pending == 600
    state = result_to_state(session.finalize())
    assert state == _run_state("ESD", True, True, trace)


def test_scope_restored_between_feeds():
    """The process-global switches are save/restored around each feed,
    so interleaved sessions with different switches don't bleed."""
    from repro.perf import memo as _memo
    from repro.vec import flags as _vec_flags

    trace = _trace(200, seed=3)
    before = (_memo.ENABLED, _vec_flags.ENABLED)
    a = _engine("ESD", True, True).open_session(app="gcc")
    b = _engine("Baseline", False, False).open_session(app="gcc")
    a.feed(trace[:100])
    assert (_memo.ENABLED, _vec_flags.ENABLED) == before
    b.feed(trace[:100])
    assert (_memo.ENABLED, _vec_flags.ENABLED) == before
    a.feed(trace[100:])
    b.feed(trace[100:])
    ra = a.finalize()
    rb = b.finalize()
    assert (_memo.ENABLED, _vec_flags.ENABLED) == before
    assert ra.extras["vectorized_enabled"] == 1.0
    assert rb.extras["vectorized_enabled"] == 0.0
