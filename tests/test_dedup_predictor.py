"""Tests for DeWrite's duplication predictor."""

import pytest

from repro.dedup.predictor import DuplicationPredictor, PredictionStats


class TestPredictor:
    def test_cold_predicts_duplicate(self):
        # Counters initialize at the weakly-duplicate threshold.
        p = DuplicationPredictor()
        assert p.predict(0) is True

    def test_trains_toward_unique(self):
        p = DuplicationPredictor()
        for _ in range(3):
            p.update(0, was_duplicate=False)
        assert p.predict(0) is False

    def test_trains_back_toward_duplicate(self):
        p = DuplicationPredictor()
        for _ in range(3):
            p.update(0, was_duplicate=False)
        for _ in range(3):
            p.update(0, was_duplicate=True)
        assert p.predict(0) is True

    def test_saturation(self):
        p = DuplicationPredictor(bits=2)
        for _ in range(100):
            p.update(0, was_duplicate=True)
        # Saturated at 3; two unique outcomes flip the prediction.
        p.update(0, was_duplicate=False)
        assert p.predict(0) is True
        p.update(0, was_duplicate=False)
        assert p.predict(0) is False

    def test_per_address_independence(self):
        p = DuplicationPredictor()
        for _ in range(3):
            p.update(0, was_duplicate=False)
        assert p.predict(0) is False
        assert p.predict(1) is True  # untouched entry

    def test_validation(self):
        with pytest.raises(ValueError):
            DuplicationPredictor(entries=0)
        with pytest.raises(ValueError):
            DuplicationPredictor(bits=0)


class TestPredictionStats:
    def test_confusion_matrix(self):
        p = DuplicationPredictor()
        p.update(0, was_duplicate=True)    # predicted dup -> T1
        p.update(0, was_duplicate=True)    # T1
        for _ in range(3):
            p.update(1, was_duplicate=False)  # first is F2, then T3s
        stats = p.stats
        assert stats.true_dup == 2
        assert stats.false_dup >= 1
        assert stats.true_unique >= 1
        assert stats.total == 5

    def test_accuracy(self):
        p = DuplicationPredictor()
        p.update(0, was_duplicate=True)
        p.update(0, was_duplicate=True)
        assert p.stats.accuracy == 1.0

    def test_empty_accuracy(self):
        assert PredictionStats().accuracy == 0.0

    def test_bursty_stream_predicted_well(self):
        """High burstiness (lbm-like) should give high accuracy."""
        import random
        rnd = random.Random(3)
        p = DuplicationPredictor()
        state = True
        for _ in range(2000):
            if rnd.random() > 0.97:  # rare state flips (bursty stream)
                state = not state
            p.predict(7)
            p.update(7, was_duplicate=state)
        assert p.stats.accuracy > 0.8
