"""Tests for counter-mode encryption (CME)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import CACHE_LINE_SIZE, ZERO_LINE
from repro.crypto.counter_mode import (
    CounterModeEngine,
    CounterTable,
    EncryptedLine,
    demonstrate_diffusion,
)

LINES = st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE)


class TestCounterTable:
    def test_starts_at_zero(self):
        assert CounterTable().current(5) == 0

    def test_advance(self):
        t = CounterTable()
        assert t.advance(5) == 1
        assert t.advance(5) == 2
        assert t.current(5) == 2
        assert t.current(6) == 0

    def test_overflow_guard(self):
        t = CounterTable(width_bits=2)
        t.advance(0)
        t.advance(0)
        t.advance(0)
        with pytest.raises(OverflowError):
            t.advance(0)


class TestEncryptDecrypt:
    def test_roundtrip(self):
        engine = CounterModeEngine()
        plaintext = bytes(range(64))
        enc = engine.encrypt(plaintext, 10)
        assert engine.decrypt(enc) == plaintext

    def test_decrypt_at_uses_current_counter(self):
        engine = CounterModeEngine()
        plaintext = bytes(range(64))
        enc = engine.encrypt(plaintext, 3)
        assert engine.decrypt_at(enc.ciphertext, 3) == plaintext

    def test_ciphertext_differs_from_plaintext(self):
        engine = CounterModeEngine()
        enc = engine.encrypt(ZERO_LINE, 0)
        assert enc.ciphertext != ZERO_LINE

    def test_counter_advances_per_write(self):
        engine = CounterModeEngine()
        a = engine.encrypt(ZERO_LINE, 7)
        b = engine.encrypt(ZERO_LINE, 7)
        assert a.counter == 1 and b.counter == 2
        # Re-encrypting the same data at the same address gives fresh
        # ciphertext (counter-mode freshness).
        assert a.ciphertext != b.ciphertext

    def test_key_length_check(self):
        with pytest.raises(ValueError):
            CounterModeEngine(key=b"short")

    def test_negative_line_rejected(self):
        with pytest.raises(ValueError):
            CounterModeEngine().encrypt(ZERO_LINE, -1)

    def test_wrong_size_ciphertext_rejected(self):
        engine = CounterModeEngine()
        with pytest.raises(ValueError):
            engine.decrypt(EncryptedLine(ciphertext=b"x", line_number=0,
                                         counter=1))

    @given(LINES, st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=60)
    def test_roundtrip_property(self, plaintext, line):
        engine = CounterModeEngine()
        assert engine.decrypt(engine.encrypt(plaintext, line)) == plaintext


class TestDiffusion:
    """The property that rules out deduplication-after-encryption."""

    def test_same_plaintext_different_addresses(self):
        engine = CounterModeEngine()
        ct_a, ct_b = demonstrate_diffusion(engine, bytes(range(64)), 1, 2)
        assert ct_a != ct_b

    def test_different_keys_different_ciphertexts(self):
        pt = bytes(range(64))
        a = CounterModeEngine(key=b"A" * 32).encrypt(pt, 0).ciphertext
        b = CounterModeEngine(key=b"B" * 32).encrypt(pt, 0).ciphertext
        assert a != b


class TestCostAccounting:
    def test_counts_and_energy(self):
        engine = CounterModeEngine()
        engine.encrypt(ZERO_LINE, 0)
        engine.encrypt(ZERO_LINE, 1)
        engine.decrypt_at(b"\x00" * 64, 0)
        assert engine.encrypt_count == 2
        assert engine.decrypt_count == 1
        expected = (2 * engine.encrypt_energy_nj + engine.decrypt_energy_nj)
        assert engine.total_crypto_energy_nj() == pytest.approx(expected)

    def test_latency_accessors_positive(self):
        engine = CounterModeEngine()
        assert engine.encrypt_latency_ns > 0
        assert engine.decrypt_latency_ns > 0
