"""Tests for the physical frame allocator."""

import pytest

from repro.common.errors import OutOfSpaceError
from repro.nvmm.allocator import FrameAllocator


class TestAllocate:
    def test_sequential_fresh_allocation(self):
        alloc = FrameAllocator(10)
        assert [alloc.allocate() for _ in range(3)] == [0, 1, 2]

    def test_exhaustion(self):
        alloc = FrameAllocator(2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(OutOfSpaceError):
            alloc.allocate()

    def test_recycles_freed_frames(self):
        alloc = FrameAllocator(2)
        a = alloc.allocate()
        alloc.allocate()
        alloc.free(a)
        assert alloc.allocate() == a

    def test_counts(self):
        alloc = FrameAllocator(4)
        alloc.allocate()
        alloc.allocate()
        assert alloc.allocated_count == 2
        assert alloc.free_count == 2
        assert alloc.utilization() == 0.5

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            FrameAllocator(0)


class TestFree:
    def test_double_free_rejected(self):
        alloc = FrameAllocator(2)
        a = alloc.allocate()
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.free(a)

    def test_free_unallocated_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(2).free(0)

    def test_is_allocated(self):
        alloc = FrameAllocator(2)
        a = alloc.allocate()
        assert alloc.is_allocated(a)
        alloc.free(a)
        assert not alloc.is_allocated(a)

    def test_full_churn(self):
        # Allocate/free cycles never lose or duplicate frames.
        alloc = FrameAllocator(8)
        frames = [alloc.allocate() for _ in range(8)]
        assert len(set(frames)) == 8
        for f in frames:
            alloc.free(f)
        frames2 = [alloc.allocate() for _ in range(8)]
        assert sorted(frames2) == sorted(frames)
