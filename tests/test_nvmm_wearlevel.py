"""Tests for Start-Gap wear leveling."""

import pytest

from repro.common.config import PCMConfig
from repro.common.errors import ConfigError
from repro.common.units import mib
from repro.nvmm.device import PCMDevice
from repro.nvmm.wearlevel import (
    StartGapWearLeveler,
    WearLevelerConfig,
    leveling_effectiveness,
)


class TestTranslation:
    def test_initial_identity(self):
        wl = StartGapWearLeveler(num_frames=8)
        # Gap starts in the spare slot (index 8); everything below maps 1:1.
        assert [wl.translate(i) for i in range(8)] == list(range(8))

    def test_out_of_range(self):
        wl = StartGapWearLeveler(num_frames=8)
        with pytest.raises(ValueError):
            wl.translate(8)
        with pytest.raises(ValueError):
            wl.translate(-1)

    def test_translation_is_injective(self):
        wl = StartGapWearLeveler(num_frames=16,
                                 config=WearLevelerConfig(gap_move_interval=1))
        for step in range(200):
            mapping = [wl.translate(i) for i in range(16)]
            assert len(set(mapping)) == 16, f"collision at step {step}"
            assert wl.gap_position not in mapping
            wl.record_write()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            WearLevelerConfig(gap_move_interval=0)
        with pytest.raises(ValueError):
            StartGapWearLeveler(num_frames=0)


class TestGapMovement:
    def test_moves_every_interval(self):
        wl = StartGapWearLeveler(num_frames=8,
                                 config=WearLevelerConfig(gap_move_interval=4))
        moved = [wl.record_write() for _ in range(12)]
        assert moved.count(True) == 3
        assert wl.gap_moves == 3

    def test_revolution_advances_start(self):
        wl = StartGapWearLeveler(num_frames=4,
                                 config=WearLevelerConfig(gap_move_interval=1))
        for _ in range(5):  # slots = 5 -> one full revolution
            wl.record_write()
        assert wl.revolutions == 1
        assert wl.start_position == 1

    def test_write_overhead(self):
        wl = StartGapWearLeveler(num_frames=8,
                                 config=WearLevelerConfig(gap_move_interval=100))
        assert wl.write_overhead() == pytest.approx(0.01)


class TestDataConsistency:
    def test_contents_follow_translation(self):
        """Data written through the leveler must stay readable across many
        gap moves — the crucial remapping invariant."""
        device = PCMDevice(PCMConfig(capacity_bytes=mib(1), num_banks=4))
        wl = StartGapWearLeveler(num_frames=32,
                                 config=WearLevelerConfig(gap_move_interval=3))
        contents = {}
        for step in range(400):
            frame = step % 32
            data = bytes([step % 251]) * 64
            device.write_line(wl.translate(frame), data)
            contents[frame] = data
            wl.record_write(device)
            # Every previously written frame must still read back right.
            for f, expected in list(contents.items())[-8:]:
                assert device.read_line(wl.translate(f)) == expected, (
                    f"frame {f} corrupted at step {step}")

    def test_hot_frame_wear_spreads(self):
        """Hammering one logical frame must spread writes across slots."""
        device = PCMDevice(PCMConfig(capacity_bytes=mib(1), num_banks=4))
        wl = StartGapWearLeveler(num_frames=8,
                                 config=WearLevelerConfig(gap_move_interval=2))
        for step in range(500):
            device.write_line(wl.translate(0), bytes([step % 256]) * 64)
            wl.record_write(device)
        stats = device.wear_stats()
        # Without leveling all 500 writes hit one slot; with it, many slots
        # share the load.
        assert stats.frames_touched > 4
        assert stats.max_writes_per_frame < 500


class TestEffectiveness:
    def test_perfectly_even(self):
        device = PCMDevice(PCMConfig(capacity_bytes=mib(1), num_banks=4))
        for i in range(8):
            device.write_line(i, bytes(64))
        assert leveling_effectiveness(device.wear_stats()) == pytest.approx(1.0)

    def test_hot_spot_scores_low(self):
        device = PCMDevice(PCMConfig(capacity_bytes=mib(1), num_banks=4))
        for _ in range(100):
            device.write_line(0, bytes(64))
        device.write_line(1, bytes(64))
        assert leveling_effectiveness(device.wear_stats()) < 0.6
