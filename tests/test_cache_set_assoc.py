"""Tests for the generic set-associative cache."""

import pytest

from repro.common.config import CacheLevelConfig
from repro.cache.set_assoc import SetAssociativeCache


def make_cache(capacity=4096, assoc=4, line=64):
    cfg = CacheLevelConfig(name="T", capacity_bytes=capacity,
                           associativity=assoc, latency_cycles=1,
                           line_size=line)
    return SetAssociativeCache(cfg)


LINE = bytes(range(64))


class TestHitMiss:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(0, write=False).hit is False

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0, write=False)
        assert cache.access(0, write=False).hit is True

    def test_same_line_different_offset_hits(self):
        cache = make_cache()
        cache.access(0, write=False)
        assert cache.access(63, write=False).hit is True

    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0, write=False)
        cache.access(0, write=False)
        cache.access(64, write=False)
        assert cache.hit_rate == pytest.approx(1 / 3)


class TestLRUReplacement:
    def test_lru_victim(self):
        cache = make_cache(capacity=4 * 64, assoc=4)  # 1 set, 4 ways
        for i in range(4):
            cache.access(i * 64, write=False)
        cache.access(0, write=False)  # touch way 0 -> MRU
        out = cache.access(4 * 64, write=False)  # evicts LRU = line 1
        assert out.eviction is not None
        assert out.eviction.address == 64

    def test_set_isolation(self):
        cache = make_cache(capacity=2 * 2 * 64, assoc=2)  # 2 sets, 2 ways
        cache.access(0, write=False)     # set 0
        cache.access(64, write=False)    # set 1
        cache.access(128, write=False)   # set 0
        out = cache.access(256, write=False)  # set 0, evicts line 0
        assert out.eviction is not None
        assert out.eviction.address == 0
        assert cache.contains(64)


class TestDirtyState:
    def test_clean_eviction_has_no_writeback(self):
        cache = make_cache(capacity=64, assoc=1)
        cache.access(0, write=False)
        out = cache.access(64, write=False)
        assert out.eviction is not None
        assert out.eviction.dirty is False

    def test_dirty_eviction_carries_data(self):
        cache = make_cache(capacity=64, assoc=1)
        cache.access(0, write=True, data=LINE)
        out = cache.access(64, write=False)
        assert out.eviction.dirty is True
        assert out.eviction.data == LINE

    def test_write_hit_dirties(self):
        cache = make_cache(capacity=64, assoc=1)
        cache.access(0, write=False)
        cache.access(0, write=True, data=LINE)
        out = cache.access(64, write=False)
        assert out.eviction.dirty is True

    def test_store_payload_size_checked(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.access(0, write=True, data=b"x")


class TestInvalidateAndFlush:
    def test_invalidate_dirty_returns_writeback(self):
        cache = make_cache()
        cache.access(0, write=True, data=LINE)
        ev = cache.invalidate(0)
        assert ev is not None and ev.dirty and ev.data == LINE
        assert not cache.contains(0)

    def test_invalidate_clean_returns_none(self):
        cache = make_cache()
        cache.access(0, write=False)
        assert cache.invalidate(0) is None

    def test_invalidate_absent_returns_none(self):
        assert make_cache().invalidate(0) is None

    def test_flush_dirty(self):
        cache = make_cache()
        cache.access(0, write=True, data=LINE)
        cache.access(64, write=False)
        cache.access(128, write=True, data=LINE)
        evs = cache.flush_dirty()
        assert sorted(e.address for e in evs) == [0, 128]
        assert cache.resident_lines() == 1  # the clean line stays

    def test_peek_does_not_touch_recency(self):
        cache = make_cache(capacity=2 * 64, assoc=2)
        cache.access(0, write=False)
        cache.access(64 * 2, write=False)  # same set (2 sets? no: 1 set)
        # peek line 0 (would be LRU) and verify it is still the victim
        cache.peek(0)
        out = cache.access(64 * 4, write=False)
        assert out.eviction.address == 0


class TestFill:
    def test_fill_installs_data(self):
        cache = make_cache()
        cache.access(0, write=False)
        cache.fill(0, LINE)
        state = cache.peek(0)
        assert state.data == LINE

    def test_fill_does_not_clobber_store_data(self):
        cache = make_cache()
        new = b"\xAB" * 64
        cache.access(0, write=True, data=new)
        cache.fill(0, LINE)  # late fill must not overwrite newer store
        assert cache.peek(0).data == new

    def test_fill_absent_raises(self):
        with pytest.raises(KeyError):
            make_cache().fill(0, LINE)
