"""Tests for the ESD-Delta partial-match extension."""

import pytest

from repro.common.types import AccessType, MemoryRequest
from repro.core.esd_delta import (
    DeltaRecord,
    ESDDeltaScheme,
    matching_words,
    word_ecc_bytes,
)
from repro.dedup import make_scheme
from repro.ecc.codec import line_ecc


def wreq(addr, data, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         issue_time_ns=t)


def rreq(addr, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.READ, issue_time_ns=t)


BASE = bytes(range(64))


def variant(words_changed):
    """BASE with the given word indices replaced by 0xFF words."""
    buf = bytearray(BASE)
    for w in words_changed:
        buf[w * 8:(w + 1) * 8] = b"\xFF" * 8
    return bytes(buf)


@pytest.fixture
def scheme(config):
    return ESDDeltaScheme(config)


class TestWordSignatures:
    def test_word_ecc_bytes(self):
        ecc = line_ecc(BASE)
        parts = word_ecc_bytes(ecc)
        assert len(parts) == 8
        assert all(0 <= p < 256 for p in parts)

    def test_matching_words_identical(self):
        ecc = line_ecc(BASE)
        assert matching_words(ecc, ecc) == 8

    def test_matching_words_partial(self):
        a = line_ecc(BASE)
        b = line_ecc(variant([2]))
        assert matching_words(a, b) == 7

    def test_delta_record_reconstruct(self):
        rec = DeltaRecord(base_frame=0, words={2: b"\xFF" * 8})
        assert rec.reconstruct(BASE) == variant([2])
        assert rec.delta_bytes == 9


class TestDeltaDedup:
    def test_factory(self, config):
        assert isinstance(make_scheme("ESD-Delta", config), ESDDeltaScheme)

    def test_full_duplicates_still_exact_dedup(self, scheme):
        scheme.handle_write(wreq(0, BASE))
        r = scheme.handle_write(wreq(64, BASE, t=500.0))
        assert r.deduplicated
        assert scheme.delta_mapped_lines == 0  # exact, not delta

    def test_near_duplicate_stored_as_delta(self, scheme):
        scheme.handle_write(wreq(0, BASE))
        near = variant([5])
        r = scheme.handle_write(wreq(64, near, t=500.0))
        assert r.deduplicated
        assert scheme.delta_mapped_lines == 1
        assert scheme.counters.get("delta_hits") == 1
        assert scheme.handle_read(rreq(64, t=1000.0)).data == near
        assert scheme.handle_read(rreq(0, t=1100.0)).data == BASE

    def test_too_different_line_written_fully(self, scheme):
        scheme.handle_write(wreq(0, BASE))
        far = variant([0, 1, 2, 3, 4])  # only 3 words shared < threshold 6
        r = scheme.handle_write(wreq(64, far, t=500.0))
        assert not r.deduplicated
        assert scheme.delta_mapped_lines == 0
        assert scheme.handle_read(rreq(64, t=1000.0)).data == far

    def test_delta_energy_cheaper_than_full_write(self, config):
        from repro.nvmm.energy import EnergyCategory
        scheme = ESDDeltaScheme(config)
        scheme.handle_write(wreq(0, BASE))
        before = scheme.controller.energy.get(EnergyCategory.PCM_WRITE)
        scheme.handle_write(wreq(64, variant([7]), t=500.0))
        delta_cost = (scheme.controller.energy.get(EnergyCategory.PCM_WRITE)
                      - before)
        assert 0 < delta_cost < config.pcm.write_energy_nj / 2

    def test_delta_overwrite_releases_base(self, scheme):
        scheme.handle_write(wreq(0, BASE))
        scheme.handle_write(wreq(64, variant([1]), t=500.0))
        assert scheme.refcounts.count(
            scheme.amt.current_frame(0)) == 2  # base + delta user
        other = b"\x44" * 64
        scheme.handle_write(wreq(64, other, t=1000.0))
        assert scheme.delta_mapped_lines == 0
        assert scheme.refcounts.count(scheme.amt.current_frame(0)) == 1
        assert scheme.handle_read(rreq(64, t=2000.0)).data == other

    def test_base_kept_alive_by_delta_users(self, scheme):
        scheme.handle_write(wreq(0, BASE))
        near = variant([3])
        scheme.handle_write(wreq(64, near, t=500.0))
        # Overwrite the base's own logical line; the frame must survive for
        # the delta user.
        scheme.handle_write(wreq(0, b"\x55" * 64, t=1000.0))
        assert scheme.handle_read(rreq(64, t=2000.0)).data == near

    def test_min_matching_words_validated(self, config):
        with pytest.raises(ValueError):
            ESDDeltaScheme(config, min_matching_words=0)
        with pytest.raises(ValueError):
            ESDDeltaScheme(config, min_matching_words=8)

    def test_metadata_accounts_delta_bytes(self, scheme):
        scheme.handle_write(wreq(0, BASE))
        base_meta = scheme.metadata_footprint().nvmm_bytes
        scheme.handle_write(wreq(64, variant([2]), t=500.0))
        assert scheme.metadata_footprint().nvmm_bytes > base_meta


class TestIntegrityUnderTraces:
    @pytest.mark.parametrize("app", ["gcc", "lbm"])
    def test_no_data_loss(self, config, app):
        from repro.sim import SimulationEngine
        from repro.workloads import TraceGenerator
        trace = TraceGenerator(app, seed=27).generate_list(2_500)
        engine = SimulationEngine(make_scheme("ESD-Delta", config))
        engine.run(iter(trace), app=app, total_hint=len(trace))

    def test_dedups_at_least_as_much_as_esd(self, config):
        from repro.workloads import TraceGenerator
        trace = TraceGenerator("mcf", seed=29).generate_list(2_500)
        esd = make_scheme("ESD", config)
        delta = make_scheme("ESD-Delta", config)
        for req in trace:
            if req.is_write:
                esd.handle_write(req)
                delta.handle_write(req)
        assert (delta.controller.data_writes
                <= esd.controller.data_writes)
