"""Tests for the 20 application profiles."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.profiles import (
    ALL_PROFILES,
    PARSEC_PROFILES,
    SPEC_PROFILES,
    TAIL_LATENCY_APPS,
    WORST_CASE_APPS,
    WorkloadProfile,
    app_names,
    get_profile,
    mean_duplicate_rate,
)


class TestRoster:
    def test_twenty_applications(self):
        assert len(ALL_PROFILES) == 20
        assert len(SPEC_PROFILES) == 12
        assert len(PARSEC_PROFILES) == 8

    def test_names_unique(self):
        names = app_names()
        assert len(set(names)) == 20

    def test_paper_applications_present(self):
        expected_spec = {"cactuBSSN", "deepsjeng", "gcc", "imagick", "lbm",
                         "leela", "mcf", "nab", "namd", "roms", "wrf",
                         "xalancbmk"}
        expected_parsec = {"blackscholes", "bodytrack", "dedup", "facesim",
                           "fluidanimate", "rtview", "swaptions", "x264"}
        assert {p.name for p in SPEC_PROFILES} == expected_spec
        assert {p.name for p in PARSEC_PROFILES} == expected_parsec

    def test_tail_latency_apps_match_figure_15(self):
        assert set(TAIL_LATENCY_APPS) == {"gcc", "leela", "bodytrack",
                                          "dedup", "facesim", "fluidanimate",
                                          "wrf", "x264"}

    def test_worst_case_apps_match_figure_2(self):
        assert set(WORST_CASE_APPS) == {"leela", "lbm"}


class TestCalibration:
    def test_mean_duplicate_rate_near_paper(self):
        # The paper reports 62.9% across the 20 applications.
        assert abs(mean_duplicate_rate() - 0.629) < 0.02

    def test_range_matches_paper(self):
        rates = [p.duplicate_rate for p in ALL_PROFILES]
        assert min(rates) == pytest.approx(0.331)  # namd floor
        assert max(rates) == pytest.approx(0.999)  # deepsjeng/roms ceiling

    def test_zero_dominated_apps(self):
        # The paper: deepsjeng and roms duplicates are largely zero lines.
        assert get_profile("deepsjeng").zero_fraction > 0.8
        assert get_profile("roms").zero_fraction > 0.8

    def test_lbm_is_nonzero_dup_heavy_and_predictable(self):
        lbm = get_profile("lbm")
        assert lbm.zero_fraction < 0.1
        assert lbm.duplicate_rate > 0.8
        assert lbm.dup_burstiness > 0.9


class TestLookup:
    def test_get_profile(self):
        assert get_profile("gcc").name == "gcc"

    def test_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_profile("doom3")


class TestValidation:
    def _base(self, **kwargs):
        defaults = dict(name="t", suite="spec2017", duplicate_rate=0.5,
                        zero_fraction=0.3, locality_skew=1.0,
                        dup_burstiness=0.5, read_fraction=0.5,
                        working_set_lines=1000, instructions_per_access=100,
                        mean_interarrival_ns=50.0)
        defaults.update(kwargs)
        return WorkloadProfile(**defaults)

    def test_valid(self):
        self._base()

    def test_bad_suite(self):
        with pytest.raises(ConfigError):
            self._base(suite="tpc")

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            self._base(duplicate_rate=1.5)
        with pytest.raises(ConfigError):
            self._base(tail_dup_fraction=-0.1)

    def test_positive_fields(self):
        with pytest.raises(ConfigError):
            self._base(locality_skew=0)
        with pytest.raises(ConfigError):
            self._base(working_set_lines=0)
        with pytest.raises(ConfigError):
            self._base(mean_interarrival_ns=0)
