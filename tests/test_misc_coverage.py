"""Coverage for smaller cross-cutting paths: partial writes, examples."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.common.config import PCMConfig
from repro.common.units import mib
from repro.nvmm.controller import MemoryController
from repro.nvmm.energy import EnergyCategory

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestPartialWrites:
    @pytest.fixture
    def controller(self):
        return MemoryController(PCMConfig(capacity_bytes=mib(4), num_banks=4))

    def test_partial_write_scales_energy(self, controller):
        controller.write_partial(7, 0.25, 0.0)
        assert controller.energy.get(EnergyCategory.PCM_WRITE) == \
            pytest.approx(0.25 * 6.75)

    def test_partial_write_full_latency(self, controller):
        result = controller.write_partial(7, 0.1, 0.0)
        assert result.latency_ns == controller.config.write_latency_ns

    def test_partial_write_counted(self, controller):
        controller.write_partial(7, 0.5, 0.0)
        assert controller.counters.get("partial_writes") == 1
        # Partial writes are not data writes (content owned by caller).
        assert controller.data_writes == 0

    def test_fraction_validated(self, controller):
        with pytest.raises(ValueError):
            controller.write_partial(7, 0.0, 0.0)
        with pytest.raises(ValueError):
            controller.write_partial(7, 1.5, 0.0)

    def test_partial_write_occupies_bank(self, controller):
        r1 = controller.write_partial(7, 0.5, 0.0)
        r2 = controller.write_partial(7, 0.5, 0.0)
        assert r2.service.start_ns >= r1.completion_ns


class TestExamplesAreRunnable:
    """The examples must at least import and expose main()."""

    @pytest.mark.parametrize("script", sorted(
        p.name for p in EXAMPLES.glob("*.py")))
    def test_example_has_main(self, script):
        source = (EXAMPLES / script).read_text()
        assert "def main()" in source
        assert '__name__ == "__main__"' in source
        compile(source, script, "exec")  # syntax-valid

    @pytest.mark.slow
    def test_quickstart_runs(self, capsys, monkeypatch):
        monkeypatch.syspath_prepend(str(EXAMPLES))
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "write reduction" in out
        assert "EFIT hit rate" in out


class TestPackageSurface:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_public_names_importable(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_alls_resolve(self):
        import importlib
        for module_name in ("repro.common", "repro.ecc", "repro.crypto",
                            "repro.nvmm", "repro.cache", "repro.workloads",
                            "repro.dedup", "repro.core", "repro.sim",
                            "repro.analysis"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (
                    f"{module_name}.{name}")
