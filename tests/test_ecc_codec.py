"""Tests for the cache-line ECC codec and fingerprint engine."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import UncorrectableError
from repro.common.types import CACHE_LINE_SIZE, ZERO_LINE
from repro.ecc.codec import (
    ECCFingerprintEngine,
    decode_line,
    line_ecc,
    line_ecc_bytes,
    verify_distinct,
    word_eccs,
)
from repro.ecc.faults import flip_bit
from repro.ecc.hamming import encode_word

LINES = st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE)


class TestLineECC:
    def test_zero_line(self):
        assert line_ecc(ZERO_LINE) == 0

    def test_size_check(self):
        with pytest.raises(ValueError):
            line_ecc(b"short")

    def test_concatenates_word_codes(self):
        data = bytes(range(64))
        words = struct.unpack("<8Q", data)
        expected = 0
        for i, w in enumerate(words):
            expected |= encode_word(w) << (8 * i)
        assert line_ecc(data) == expected

    def test_word_eccs_match(self):
        data = bytes(range(64))
        eccs = word_eccs(data)
        full = line_ecc(data)
        for i, e in enumerate(eccs):
            assert (full >> (8 * i)) & 0xFF == e

    def test_bytes_view(self):
        data = bytes(range(64))
        assert int.from_bytes(line_ecc_bytes(data), "little") == line_ecc(data)

    @given(LINES)
    @settings(max_examples=100)
    def test_deterministic(self, data):
        assert line_ecc(data) == line_ecc(data)

    @given(LINES, LINES)
    @settings(max_examples=100)
    def test_soundness(self, a, b):
        # Different ECC always proves different content.
        if line_ecc(a) != line_ecc(b):
            assert a != b


class TestDecodeLine:
    def test_clean(self):
        data = bytes(range(64))
        r = decode_line(data, line_ecc(data))
        assert r.data == data
        assert not r.corrected

    def test_single_bit_per_word_corrected(self):
        data = bytes(range(64))
        ecc = line_ecc(data)
        for word in range(8):
            corrupted = flip_bit(data, word * 64 + 13)
            r = decode_line(corrupted, ecc)
            assert r.data == data
            assert r.corrected_words == (word,)

    def test_one_bit_in_every_word_corrected(self):
        data = bytes(range(64))
        ecc = line_ecc(data)
        corrupted = data
        for word in range(8):
            corrupted = flip_bit(corrupted, word * 64 + word)
        r = decode_line(corrupted, ecc)
        assert r.data == data
        assert r.corrected_words == tuple(range(8))

    def test_double_bit_same_word_detected(self):
        data = bytes(range(64))
        ecc = line_ecc(data)
        corrupted = flip_bit(flip_bit(data, 128), 130)
        with pytest.raises(UncorrectableError) as exc:
            decode_line(corrupted, ecc)
        assert exc.value.word_index == 2

    def test_ecc_range_check(self):
        with pytest.raises(ValueError):
            decode_line(bytes(64), 1 << 64)


class TestFingerprintEngine:
    def test_protocol_fields(self):
        engine = ECCFingerprintEngine()
        assert engine.name == "ecc"
        assert engine.bits == 64
        assert engine.fingerprint_size_bytes() == 8

    def test_zero_marginal_cost(self):
        # The property ESD exploits: the ECC already exists.
        engine = ECCFingerprintEngine()
        assert engine.latency_ns == 0.0
        assert engine.energy_nj == 0.0

    def test_fingerprint_matches_line_ecc(self):
        data = bytes(range(64))
        assert ECCFingerprintEngine().fingerprint(data) == line_ecc(data)


class TestVerifyDistinct:
    def test_identical_lines(self):
        assert not verify_distinct(ZERO_LINE, ZERO_LINE)

    def test_obviously_different(self):
        other = b"\xff" * 64
        assert verify_distinct(ZERO_LINE, other)
