"""Tests for the full-stack system (CPU -> caches -> scheme -> NVMM)."""

import dataclasses

import pytest

from repro.cache.hierarchy import CPUAccess
from repro.common.config import CacheLevelConfig, ProcessorConfig
from repro.dedup import make_scheme
from repro.sim.system import FullSystem
from repro.workloads.generator import CPUAccessGenerator


def tiny_hierarchy_config(config):
    """Shrink the cache hierarchy so write-backs reach memory quickly."""
    processor = ProcessorConfig(
        cores=8,
        l1=CacheLevelConfig(name="L1", capacity_bytes=8 * 64,
                            associativity=2, latency_cycles=2),
        l2=CacheLevelConfig(name="L2", capacity_bytes=32 * 64,
                            associativity=4, latency_cycles=8),
        l3=CacheLevelConfig(name="L3", capacity_bytes=128 * 64,
                            associativity=4, latency_cycles=25),
    )
    return dataclasses.replace(config, processor=processor)


@pytest.fixture
def system(config):
    return FullSystem(make_scheme("ESD", tiny_hierarchy_config(config)))


class TestFullSystem:
    def test_run_produces_result(self, system):
        accesses = list(CPUAccessGenerator("gcc", seed=4).generate(2_000))
        result = system.run(iter(accesses), app="gcc")
        assert result.scheme == "ESD"
        assert result.ipc > 0

    def test_cache_filters_memory_traffic(self, system):
        accesses = list(CPUAccessGenerator("gcc", seed=4).generate(
            3_000, rereference_prob=0.7))
        system.run(iter(accesses), app="gcc")
        stats = system.cache_stats()
        # The hierarchy must absorb a meaningful share of accesses.
        total_mem = stats.fills_from_memory + stats.writebacks_to_memory
        assert total_mem < len(accesses)
        assert stats.l1_hit_rate > 0.1

    def test_writeback_stream_reaches_scheme(self, system):
        payload = b"\x5A" * 64
        # Write far more distinct lines than the hierarchy holds.
        accesses = [CPUAccess(address=i * 64, write=True, data=payload)
                    for i in range(2_000)]
        system.run(iter(accesses), app="synthetic")
        assert system.scheme.writes_handled > 0

    def test_dedup_applies_to_writebacks(self, config):
        payload = b"\x5A" * 64
        accesses = [CPUAccess(address=i * 64, write=True, data=payload)
                    for i in range(2_000)]
        system = FullSystem(make_scheme("ESD", tiny_hierarchy_config(config)))
        system.run(iter(accesses), app="synthetic")
        # Identical payloads: nearly every write-back deduplicates.
        assert system.scheme.write_reduction() > 0.9

    def test_incremental_feed_matches_run(self, config):
        """Chunked feed()/finalize() is bit-identical to one-shot run()."""
        from repro.sim.export import result_to_state

        accesses = list(CPUAccessGenerator("gcc", seed=9).generate(2_000))
        one_shot = FullSystem(
            make_scheme("ESD", tiny_hierarchy_config(config)))
        expected = one_shot.run(iter(accesses), app="gcc")
        chunked = FullSystem(
            make_scheme("ESD", tiny_hierarchy_config(config)))
        for start in range(0, len(accesses), 333):
            chunked.feed(iter(accesses[start:start + 333]))
        got = chunked.finalize("gcc")
        assert result_to_state(got) == result_to_state(expected)

    def test_drain_flushes_dirty_lines(self, system):
        accesses = [CPUAccess(address=i * 64, write=True, data=b"\x11" * 64)
                    for i in range(64)]
        system.run(iter(accesses), app="tiny")
        before = system.scheme.writes_handled
        drained = system.drain()
        assert drained > 0
        assert system.scheme.writes_handled == before + drained
