"""Tests for the artifact-style CLI."""

import pytest

from repro.cli import build_parser, main, resolve_scheme


class TestResolveScheme:
    @pytest.mark.parametrize("token,expected", [
        ("0", "Baseline"), ("1", "Dedup_SHA1"), ("2", "DeWrite"),
        ("3", "ESD"), ("esd", "ESD"), ("Baseline", "Baseline"),
        ("dewrite", "DeWrite")])
    def test_accepted_tokens(self, token, expected):
        assert resolve_scheme(token) == expected

    def test_unknown(self):
        with pytest.raises(SystemExit):
            resolve_scheme("4")


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "3"
        assert args.app == "gcc"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "doom"])


class TestCommands:
    def test_run_prints_statistics(self, capsys):
        rc = main(["run", "--scheme", "3", "--app", "gcc",
                   "--requests", "1500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gcc under ESD" in out
        assert "write reduction" in out
        assert "efit_hit_rate" in out

    def test_run_with_numeric_scheme_code(self, capsys):
        rc = main(["run", "--scheme", "0", "--app", "namd",
                   "--requests", "1200"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "namd under Baseline" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--app", "deepsjeng", "--requests", "1500"])
        out = capsys.readouterr().out
        assert rc == 0
        for scheme in ("Baseline", "Dedup_SHA1", "DeWrite", "ESD"):
            assert scheme in out

    def test_gen_trace_and_replay(self, tmp_path, capsys):
        trace_path = tmp_path / "t.esdtrace"
        rc = main(["gen-trace", "--app", "gcc", "--requests", "800",
                   "--out", str(trace_path)])
        assert rc == 0
        assert trace_path.exists()
        rc = main(["run", "--scheme", "ESD", "--trace", str(trace_path),
                   "--app", "gcc"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "800" in out

    def test_list_apps(self, capsys):
        rc = main(["list-apps"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "deepsjeng" in out and "x264" in out

    def test_cache_size_flags(self, capsys):
        rc = main(["run", "--scheme", "ESD", "--app", "gcc",
                   "--requests", "1200", "--efit-kb", "4", "--amt-kb", "16"])
        assert rc == 0


class TestSweepCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.apps == "all"
        assert args.schemes == "all"
        assert args.jobs is None
        assert args.store is None
        assert args.metric == "write_latency_ns"

    def test_unknown_metric_rejected_before_running(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--metric", "not_a_metric"])
        # The error must teach the valid names.
        assert "write_latency_ns" in str(excinfo.value)
        assert "ipc" in str(excinfo.value)

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--apps", "gcc,doom"])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--schemes", "ESD,NoSuch"])

    def test_sweep_runs_and_caches(self, tmp_path, capsys):
        argv = ["sweep", "--apps", "gcc", "--schemes", "ESD,Baseline",
                "--requests", "600", "--jobs", "1",
                "--store", str(tmp_path / "store"), "--quiet",
                "--export", str(tmp_path / "grid.json")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "ESD" in out and "Baseline" in out
        assert (tmp_path / "grid.json").exists()
        # Second invocation resumes entirely from the store.
        assert main(argv[:-2]) == 0
        manifest = (tmp_path / "store" / "manifest.json").read_text()
        import json
        assert json.loads(manifest)["cached"] == 2
        assert json.loads(manifest)["simulated"] == 0

    def test_numeric_scheme_codes_and_dedupe(self, tmp_path):
        rc = main(["sweep", "--apps", "gcc", "--schemes", "3,ESD",
                   "--requests", "600", "--jobs", "1", "--quiet",
                   "--store", str(tmp_path / "store")])
        assert rc == 0
