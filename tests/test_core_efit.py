"""Tests for the EFIT (ECC-based fingerprint index table)."""

import pytest

from repro.common.config import ESDConfig, MetadataCacheConfig
from repro.core.efit import EFIT, EFIT_ENTRY_SIZE


def make_efit(entries=8, **esd_kwargs):
    cache = MetadataCacheConfig(efit_bytes=entries * EFIT_ENTRY_SIZE,
                                amt_bytes=1024)
    return EFIT(cache, ESDConfig(**esd_kwargs))


class TestEntryLayout:
    def test_entry_size_matches_figure_7(self):
        # ECC 8 B + Addr_base 4 B + Addr_offsets 1 B + referH 1 B.
        assert EFIT_ENTRY_SIZE == 14

    def test_capacity_from_bytes(self):
        efit = make_efit(entries=8)
        assert efit.capacity == 8

    def test_paper_default_capacity(self):
        efit = EFIT()  # 512 KB default
        assert efit.capacity == (512 * 1024) // EFIT_ENTRY_SIZE


class TestLookupInsert:
    def test_miss_returns_probe_latency_only(self):
        efit = make_efit()
        entry, latency = efit.lookup(0xABCD)
        assert entry is None
        assert latency == efit.probe_latency_ns
        assert efit.misses == 1

    def test_insert_then_hit(self):
        efit = make_efit()
        efit.insert(0xABCD, 42)
        entry, _ = efit.lookup(0xABCD)
        assert entry is not None
        assert entry.frame == 42
        assert entry.refer_h == 1
        assert efit.hits == 1

    def test_entry_exposes_packed_address(self):
        efit = make_efit()
        efit.insert(1, 0x1FF)
        entry, _ = efit.lookup(1)
        assert entry.physical.base == 1
        assert entry.physical.offset == 0xFF

    def test_frame_must_fit_40_bits(self):
        efit = make_efit()
        with pytest.raises(ValueError):
            efit.insert(1, 1 << 40)

    def test_hit_rate(self):
        efit = make_efit()
        efit.insert(1, 1)
        efit.lookup(1)
        efit.lookup(2)
        assert efit.hit_rate == 0.5


class TestReferH:
    def test_record_duplicate_increments(self):
        efit = make_efit()
        efit.insert(1, 10)
        assert efit.record_duplicate(1) == 2
        entry, _ = efit.lookup(1)
        assert entry.refer_h == 2

    def test_saturation_detection(self):
        efit = make_efit(refer_h_max=3)
        efit.insert(1, 10)
        assert not efit.refer_h_saturated(1)
        efit.record_duplicate(1)
        efit.record_duplicate(1)
        assert efit.refer_h_saturated(1)

    def test_replace_frame_resets_referh(self):
        efit = make_efit(refer_h_max=3)
        efit.insert(1, 10)
        efit.record_duplicate(1)
        efit.record_duplicate(1)
        efit.replace_frame(1, 20)
        entry, _ = efit.lookup(1)
        assert entry.frame == 20
        assert entry.refer_h == 1
        assert not efit.refer_h_saturated(1)


class TestReplacement:
    def test_lrcu_keeps_high_referh(self):
        efit = make_efit(entries=2)
        efit.insert(1, 10)
        efit.record_duplicate(1)   # referH 2
        efit.insert(2, 20)          # referH 1
        evicted = efit.insert(3, 30)
        assert evicted == 20       # the referH-1 entry went
        assert efit.lookup(1)[0] is not None

    def test_remove(self):
        efit = make_efit()
        efit.insert(1, 10)
        efit.remove(1)
        assert efit.lookup(1)[0] is None

    def test_onchip_bytes(self):
        efit = make_efit(entries=8)
        efit.insert(1, 10)
        efit.insert(2, 20)
        assert efit.onchip_bytes() == 2 * EFIT_ENTRY_SIZE

    def test_evictions_counted(self):
        efit = make_efit(entries=1)
        efit.insert(1, 10)
        efit.insert(2, 20)
        assert efit.evictions == 1
