"""Tests for workload-characteristics analysis (Figures 1 and 3)."""

import pytest

from repro.common.types import AccessType, MemoryRequest, ZERO_LINE
from repro.workloads.analysis import (
    BUCKETS,
    bucket_for_count,
    content_locality_headline,
    duplicate_rate,
    duplicate_stats,
    reference_count_distribution,
)


def write(addr, data, seq=0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         seq=seq)


def read(addr):
    return MemoryRequest(address=addr, access=AccessType.READ)


LINE_A = b"\x01" * 64
LINE_B = b"\x02" * 64


class TestBucketForCount:
    @pytest.mark.parametrize("count,bucket", [
        (1, "num1"), (2, "num10"), (10, "num10"), (11, "num100"),
        (100, "num100"), (101, "num1000"), (1000, "num1000"),
        (1001, "num1000+"), (50_000, "num1000+")])
    def test_boundaries(self, count, bucket):
        assert bucket_for_count(count) == bucket

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bucket_for_count(0)


class TestDuplicateStats:
    def test_no_duplicates(self):
        stats = duplicate_stats([write(0, LINE_A), write(64, LINE_B)])
        assert stats.duplicate_rate == 0.0
        assert stats.unique_contents == 2

    def test_all_duplicates_after_first(self):
        reqs = [write(i * 64, LINE_A) for i in range(4)]
        stats = duplicate_stats(reqs)
        assert stats.duplicate_writes == 3
        assert stats.duplicate_rate == 0.75

    def test_zero_duplicates_tracked(self):
        reqs = [write(0, ZERO_LINE), write(64, ZERO_LINE), write(128, LINE_A),
                write(192, LINE_A)]
        stats = duplicate_stats(reqs)
        assert stats.zero_duplicate_writes == 1
        assert stats.zero_share_of_duplicates == 0.5

    def test_reads_ignored(self):
        assert duplicate_rate([read(0), write(0, LINE_A), read(64)]) == 0.0

    def test_empty(self):
        stats = duplicate_stats([])
        assert stats.duplicate_rate == 0.0
        assert stats.zero_share_of_duplicates == 0.0


class TestReferenceDistribution:
    def test_buckets(self):
        reqs = ([write(0, LINE_A)]                       # num1
                + [write(64, LINE_B)] * 5                # num10
                + [write(128, ZERO_LINE)] * 50)          # num100
        dist = reference_count_distribution(reqs)
        assert dist.unique_lines["num1"] == 1
        assert dist.unique_lines["num10"] == 1
        assert dist.unique_lines["num100"] == 1
        assert dist.total_unique == 3
        assert dist.total_volume == 56
        assert dist.volume["num100"] == 50

    def test_shares_sum_to_one(self):
        reqs = [write(0, LINE_A)] * 3 + [write(64, LINE_B)]
        dist = reference_count_distribution(reqs)
        assert sum(dist.unique_share(b) for b in BUCKETS) == pytest.approx(1.0)
        assert sum(dist.volume_share(b) for b in BUCKETS) == pytest.approx(1.0)

    def test_headline(self):
        reqs = [write(0, ZERO_LINE)] * 1500 + [write(64, LINE_A)]
        dist = reference_count_distribution(reqs)
        unique_share, volume_share = content_locality_headline(dist)
        assert unique_share == pytest.approx(0.5)
        assert volume_share == pytest.approx(1500 / 1501)

    def test_empty_distribution(self):
        dist = reference_count_distribution([])
        assert dist.total_unique == 0
        assert dist.unique_share("num1") == 0.0

    def test_rows_ordering(self):
        dist = reference_count_distribution([write(0, LINE_A)])
        rows = dist.as_rows()
        assert [r[0] for r in rows] == list(BUCKETS)
