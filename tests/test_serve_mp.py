"""Multi-process serve tests (ISSUE 9): affinity, parity, crash, knobs.

Parity basis is *stronger* than the in-process server's: each worker
process owns its own process-global memo/vec/obs state, so sessions on
distinct workers never share caches — even concurrent tenants compare
full-state bit-exact against direct runs, no ``_comparable`` strip
needed (tenants are chosen to land on distinct workers via the same
stable hash the server uses).

Crash containment is the robustness half of the perf story: SIGKILL one
worker mid-feed and its sessions must fail with the typed
``WorkerCrashError`` (wire code ``worker_crash``), other tenants finish
bit-exact, and the pool respawns back to N workers.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common.errors import ConfigError, ServeError, WorkerCrashError
from repro.registry import make_scheme
from repro.serve import BackgroundServer, ServeClient, ServeConfig
from repro.serve.config import MAX_WORKERS, resolve_workers
from repro.serve.pool import worker_for_tenant
from repro.sim.engine import EngineConfig, SimulationEngine
from repro.sim.export import result_to_state
from repro.sim.runner import scaled_system_config
from repro.workloads.generator import TraceGenerator

REPO = Path(__file__).resolve().parent.parent


def _trace(app: str, n: int, seed: int):
    return TraceGenerator(app, seed=seed).generate_list(n)


def _direct_state(scheme_name: str, trace, app: str, options=None):
    config = scaled_system_config()
    if options:
        config = config.with_options(options)
    engine = SimulationEngine(make_scheme(scheme_name, config),
                              EngineConfig())
    return result_to_state(engine.run(iter(trace), app=app,
                                      total_hint=len(trace)))


def _tenant_on_worker(worker: int, workers: int, prefix: str = "t") -> str:
    """A tenant label the stable hash routes to the given worker."""
    for i in range(10_000):
        tenant = f"{prefix}{i}"
        if worker_for_tenant(tenant, workers) == worker:
            return tenant
    raise AssertionError("no tenant found (hash degenerate?)")


# ---------------------------------------------------------------------------
# Affinity
# ---------------------------------------------------------------------------

def test_affinity_is_stable_and_covers_all_workers():
    # Deterministic across calls (sha256, not the salted builtin hash).
    assert worker_for_tenant("alice", 4) == worker_for_tenant("alice", 4)
    for workers in (1, 2, 3, 8):
        hits = {worker_for_tenant(f"tenant-{i}", workers)
                for i in range(256)}
        assert hits == set(range(workers))


# ---------------------------------------------------------------------------
# Worker-count validation (satellite: --workers / REPRO_SERVE_WORKERS)
# ---------------------------------------------------------------------------

def test_resolve_workers_rejects_out_of_range_values():
    for bad in (0, -1, MAX_WORKERS + 1):
        with pytest.raises(ConfigError) as excinfo:
            resolve_workers(bad)
        assert f"1..{MAX_WORKERS}" in str(excinfo.value)


def test_resolve_workers_env_fallback(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
    assert resolve_workers() == 1
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "3")
    assert resolve_workers() == 3
    assert resolve_workers(2) == 2  # the flag wins over the environment
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "not-a-number")
    with pytest.raises(ConfigError) as excinfo:
        resolve_workers()
    assert f"1..{MAX_WORKERS}" in str(excinfo.value)


def test_serve_config_rejects_bad_worker_count():
    with pytest.raises(ConfigError) as excinfo:
        ServeConfig(workers=0)
    assert f"1..{MAX_WORKERS}" in str(excinfo.value)
    with pytest.raises(ConfigError):
        ServeConfig(worker_inflight=0)


def test_cli_rejects_bad_worker_count():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "0"],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode != 0
    assert f"1..{MAX_WORKERS}" in proc.stderr


# ---------------------------------------------------------------------------
# Parity
# ---------------------------------------------------------------------------

def test_mp_single_session_full_bit_parity():
    """One session through a 2-worker server: full state bit-exact."""
    trace = _trace("gcc", 3000, 41)
    with BackgroundServer(ServeConfig(workers=2)) as server:
        with ServeClient("127.0.0.1", server.port) as client:
            payload = client.run_trace(iter(trace), "ESD", app="gcc",
                                       total_hint=len(trace))
            flat = client.metrics()["flat"]
    assert payload["state"] == _direct_state("ESD", trace, "gcc")
    assert server.drained_clean is True
    # Aggregated metrics span parent and workers.
    assert flat["serve_workers_alive"] == 2
    opened = sum(v for k, v in flat.items()
                 if k.startswith("serve_worker_sessions_opened_total"))
    assert opened == 1


def test_mp_concurrent_distinct_worker_tenants_full_parity():
    """Tenants pinned to distinct workers stream concurrently and still
    compare full-state bit-exact — stronger than the threaded server,
    whose sessions share one process's memo caches."""
    workers = 3
    tenants = [
        (_tenant_on_worker(0, workers, "w0-"), "ESD", "gcc", 3000, 13),
        (_tenant_on_worker(1, workers, "w1-"), "Baseline", "lbm", 2500, 17),
        (_tenant_on_worker(2, workers, "w2-"), "DeWrite", "deepsjeng",
         2500, 19),
    ]
    traces = {t[0]: _trace(t[2], t[3], t[4]) for t in tenants}
    payloads = {}
    errors = []

    with BackgroundServer(ServeConfig(workers=workers)) as server:

        def _drive(tenant, scheme, app):
            try:
                with ServeClient("127.0.0.1", server.port) as client:
                    payloads[tenant] = client.run_trace(
                        iter(traces[tenant]), scheme, tenant=tenant,
                        app=app, total_hint=len(traces[tenant]),
                        batch_size=256)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((tenant, exc))

        threads = [threading.Thread(target=_drive, args=(t[0], t[1], t[2]))
                   for t in tenants]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)

    assert not errors, errors
    assert server.drained_clean is True
    for tenant, scheme, app, _n, _seed in tenants:
        expected = _direct_state(scheme, traces[tenant], app)
        assert payloads[tenant]["state"] == expected, tenant


# ---------------------------------------------------------------------------
# Crash containment and respawn
# ---------------------------------------------------------------------------

def test_worker_crash_fails_only_its_sessions_and_pool_respawns():
    workers = 2
    victim_tenant = _tenant_on_worker(0, workers, "victim-")
    safe_tenant = _tenant_on_worker(1, workers, "safe-")
    victim_trace = _trace("gcc", 6000, 53)
    safe_trace = _trace("lbm", 3000, 59)

    with BackgroundServer(ServeConfig(workers=workers)) as server:
        assert server.server is not None
        pool = server.server.manager.pool
        assert pool is not None

        victim = ServeClient("127.0.0.1", server.port)
        victim.open_session("ESD", tenant=victim_tenant, app="gcc",
                            total_hint=len(victim_trace))
        victim.stream(victim_trace[:2000], batch_size=500)

        safe = ServeClient("127.0.0.1", server.port)
        safe.open_session("Baseline", tenant=safe_tenant, app="lbm",
                          total_hint=len(safe_trace))
        safe.stream(safe_trace[:1000], batch_size=500)

        # SIGKILL the victim's worker mid-stream.
        os.kill(pool.pids()[0], signal.SIGKILL)

        with pytest.raises(WorkerCrashError) as excinfo:
            victim.stream(victim_trace[2000:], batch_size=500)
            victim.finalize()
        assert excinfo.value.code == "worker_crash"
        victim.close()

        # The other tenant's stream finishes bit-exact.
        safe.stream(safe_trace[1000:], batch_size=500)
        safe_payload = safe.finalize()
        safe.close()
        assert safe_payload["state"] == _direct_state(
            "Baseline", safe_trace, "lbm")

        # The pool respawns back to N workers...
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and pool.alive_count() < workers:
            time.sleep(0.05)
        assert pool.alive_count() == workers

        # ...and the crashed tenant can open a fresh session on the
        # respawned worker and run to a bit-exact result.
        with ServeClient("127.0.0.1", server.port) as again:
            retry = again.run_trace(
                iter(victim_trace), "ESD", tenant=victim_tenant, app="gcc",
                total_hint=len(victim_trace))
            flat = again.metrics()["flat"]
        assert retry["state"] == _direct_state("ESD", victim_trace, "gcc")
        assert flat["serve_worker_respawns_total"] == 1
        assert flat["serve_workers_alive"] == workers

    assert server.drained_clean is True


# ---------------------------------------------------------------------------
# CLI end-to-end at --workers (drain through SIGTERM)
# ---------------------------------------------------------------------------

def test_cli_serve_multiprocess_drains_clean():
    trace = _trace("gcc", 3000, 61)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "2", "--drain-grace", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    try:
        assert proc.stdout is not None
        line = proc.stdout.readline()
        match = re.match(r"serving on .*:(\d+)", line)
        assert match, f"unexpected announce line: {line!r}"
        port = int(match.group(1))
        with ServeClient("127.0.0.1", port) as client:
            payload = client.run_trace(iter(trace), "ESD", app="gcc",
                                       total_hint=len(trace))
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, (out, err)
    assert "drained clean" in out
    assert payload["state"] == _direct_state("ESD", trace, "gcc")
