"""Tests for the multi-app/multi-scheme runner."""

import pytest

from repro.sim.metrics import speedup
from repro.sim.runner import (
    ExperimentConfig,
    grid_metric,
    iter_apps,
    run_app,
    run_grid,
    scaled_system_config,
)


class TestRunApp:
    def test_runs_all_schemes_on_shared_trace(self, config):
        results = run_app("gcc", ["Baseline", "ESD"], requests=1_500,
                          system=config)
        assert set(results) == {"Baseline", "ESD"}
        base, esd = results["Baseline"], results["ESD"]
        # Same trace: same request counts presented.
        assert base.writes == esd.writes
        assert base.reads == esd.reads

    def test_explicit_trace_reused(self, config, small_trace):
        results = run_app("gcc", ["Baseline"], system=config,
                          trace=small_trace)
        total = results["Baseline"].writes + results["Baseline"].reads
        assert total == len(small_trace) - len(small_trace) // 10

    def test_deterministic_across_calls(self, config):
        a = run_app("x264", ["ESD"], requests=1_200, system=config, seed=5)
        b = run_app("x264", ["ESD"], requests=1_200, system=config, seed=5)
        assert a["ESD"].mean_write_latency_ns == b["ESD"].mean_write_latency_ns
        assert a["ESD"].pcm_data_writes == b["ESD"].pcm_data_writes


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert len(cfg.apps) == 20
        assert len(cfg.schemes) == 4

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            ExperimentConfig(schemes=["Baseline", "NVDedup"])

    def test_rejects_nonpositive_requests(self):
        with pytest.raises(ValueError):
            ExperimentConfig(requests_per_app=0)

    def test_scaled_system_config_shrinks_caches(self):
        from repro.common import default_config
        scaled = scaled_system_config()
        assert (scaled.metadata_cache.efit_bytes
                < default_config().metadata_cache.efit_bytes)


class TestRunGrid:
    def test_grid_shape(self, config):
        cfg = ExperimentConfig(apps=["gcc", "namd"],
                               schemes=["Baseline", "ESD"],
                               requests_per_app=1_200, system=config)
        grid = run_grid(cfg)
        assert set(grid) == {("gcc", "Baseline"), ("gcc", "ESD"),
                             ("namd", "Baseline"), ("namd", "ESD")}

    def test_iter_apps_order(self, config):
        cfg = ExperimentConfig(apps=["namd", "gcc"], schemes=["Baseline"],
                               requests_per_app=1_000, system=config)
        grid = run_grid(cfg)
        assert list(iter_apps(grid)) == ["namd", "gcc"]

    def test_grid_metric_pivot(self, config):
        cfg = ExperimentConfig(apps=["gcc"], schemes=["Baseline", "ESD"],
                               requests_per_app=1_200, system=config)
        grid = run_grid(cfg)
        pivot = grid_metric(grid, "write_latency_ns")
        assert set(pivot["gcc"]) == {"Baseline", "ESD"}
        with pytest.raises(KeyError):
            grid_metric(grid, "not_a_metric")


class TestSpeedupHelper:
    def test_speedup_definition(self, config):
        results = run_app("deepsjeng", ["Baseline", "ESD"], requests=2_000,
                          system=config)
        s = speedup(results["Baseline"], results["ESD"], metric="write")
        expected = (results["Baseline"].mean_write_latency_ns
                    / results["ESD"].mean_write_latency_ns)
        assert s == pytest.approx(expected)

    def test_unknown_metric(self, config):
        results = run_app("gcc", ["Baseline"], requests=1_000, system=config)
        with pytest.raises(ValueError):
            speedup(results["Baseline"], results["Baseline"], metric="ipc")
