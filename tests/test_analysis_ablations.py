"""Tests for the ablation sweeps."""

import pytest

from repro.analysis.ablations import (
    ablate_bank_count,
    ablate_comparison_read,
    ablate_lrcu_decay,
    ablate_predictor,
    ablate_referh_width,
    ablate_row_buffer,
)

REQUESTS = 4_000


class TestLRCUDecay:
    def test_sweep_shape(self):
        rows, headers = ablate_lrcu_decay(requests=REQUESTS,
                                          periods=(0, 1024, 8192))
        assert headers[0] == "decay_period"
        assert len(rows) == 3
        assert rows[0][0] == "off"
        for row in rows:
            assert 0.0 <= row[1] <= 1.0   # hit rate
            assert 0.0 <= row[2] <= 1.0   # reduction


class TestReferHWidth:
    def test_tighter_budget_more_overflows(self):
        rows, _ = ablate_referh_width(requests=REQUESTS, maxima=(3, 255))
        overflows = {row[0]: row[1:] for row in rows}
        assert overflows[3][1] >= overflows[255][1]  # overflow counts
        # A 1-byte budget loses no meaningful reduction vs 255.
        assert overflows[255][0] >= overflows[3][0] - 0.02


class TestPredictor:
    def test_bigger_table_not_less_accurate(self):
        rows, _ = ablate_predictor(requests=REQUESTS, entries=(16, 4096))
        small, large = rows[0], rows[1]
        assert large[1] >= small[1] - 0.05  # accuracy


class TestBankCount:
    def test_fewer_banks_more_queueing(self):
        rows, _ = ablate_bank_count(requests=REQUESTS, banks=(2, 16))
        few, many = rows[0], rows[1]
        assert few[1] > many[1]  # baseline latency falls with banks

    def test_esd_speedup_positive_everywhere(self):
        rows, _ = ablate_bank_count(requests=REQUESTS, banks=(4, 16))
        for row in rows:
            assert row[3] > 1.0


class TestRowBuffer:
    def test_slower_row_hits_slower_writes(self):
        rows, _ = ablate_row_buffer(requests=REQUESTS,
                                    hit_latencies=(15.0, 75.0))
        fast, slow = rows[0], rows[1]
        assert slow[1] >= fast[1]  # ESD write latency


class TestComparisonRead:
    def test_verification_costs_latency_not_reduction(self):
        rows, _ = ablate_comparison_read(requests=REQUESTS)
        verified, trusting = rows[0], rows[1]
        assert verified[1] >= trusting[1]           # latency price
        assert verified[2] == pytest.approx(trusting[2], abs=0.01)
