"""Tests for the trace ring, run scope, and trace export."""

import io
import json

import pytest

from repro.common.config import ObservabilityConfig
from repro.obs import runtime
from repro.obs.export import (
    build_report,
    metrics_to_csv,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.runtime import RunObservation, begin_run, end_run
from repro.obs.tracing import TraceEvent, TraceRing


def event(i, component="test", name="tick"):
    return TraceEvent(float(i), i, component, name, {"i": i})


class TestTraceRing:
    def test_records_in_order(self):
        ring = TraceRing(8)
        for i in range(3):
            ring.record(event(i))
        assert [e.request_id for e in ring.events()] == [0, 1, 2]

    def test_overflow_evicts_oldest(self):
        ring = TraceRing(4)
        for i in range(10):
            ring.record(event(i))
        assert len(ring) == 4
        assert [e.request_id for e in ring.events()] == [6, 7, 8, 9]
        assert ring.recorded == 10
        assert ring.dropped == 6

    def test_memory_bounded_under_flood(self):
        # Adversarial flood: far more events than capacity must never grow
        # the retained set beyond the ring.
        import sys
        ring = TraceRing(64)
        for i in range(100_000):
            ring.emit(float(i), i, "flood", "event")
        assert len(ring) == 64
        assert ring.stats() == {"capacity": 64, "recorded": 100_000,
                                "retained": 64, "dropped": 99_936}
        # The deque itself stays at capacity; its size cannot scale with
        # the number of recorded events.
        assert sys.getsizeof(ring._events) < 64 * 1024

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceRing(0)

    def test_clear(self):
        ring = TraceRing(4)
        ring.record(event(1))
        ring.clear()
        assert len(ring) == 0 and ring.recorded == 0


class TestTraceEvent:
    def test_round_trip_dict(self):
        e = event(7, component="efit", name="hit")
        assert TraceEvent.from_dict(e.to_dict()) == e

    def test_from_dict_rejects_bad_payload(self):
        with pytest.raises(ValueError):
            TraceEvent.from_dict({"tick": 0.0, "request_id": 1,
                                  "component": "x", "event": "y",
                                  "payload": "not-a-dict"})


class TestRunScope:
    def test_disabled_config_installs_none(self):
        prev = begin_run(ObservabilityConfig())
        try:
            assert runtime.RUN is None
        finally:
            end_run(prev)

    def test_enabled_scope_lifecycle(self):
        prev = begin_run(ObservabilityConfig(enabled=True))
        try:
            assert isinstance(runtime.RUN, RunObservation)
        finally:
            finished = end_run(prev)
        assert isinstance(finished, RunObservation)
        assert runtime.RUN is prev

    def test_nested_scopes_restore(self):
        outer_prev = begin_run(ObservabilityConfig(enabled=True))
        outer = runtime.RUN
        inner_prev = begin_run(ObservabilityConfig(enabled=True))
        assert runtime.RUN is not outer
        end_run(inner_prev)
        assert runtime.RUN is outer
        end_run(outer_prev)

    def test_sampling_gates_record_not_emit(self):
        run = RunObservation(
            ObservabilityConfig(enabled=True, sample_every=2))
        run.begin_request(0)
        run.record(1.0, "c", "sampled")
        run.begin_request(1)
        run.record(2.0, "c", "skipped")
        run.emit(3.0, 1, "c", "unconditional")
        names = [e.event for e in run.ring.events()]
        assert names == ["sampled", "unconditional"]


class TestTraceExport:
    def test_jsonl_round_trip_via_path(self, tmp_path):
        events = [event(i) for i in range(5)]
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(events, path) == 5
        assert read_trace_jsonl(path) == events

    def test_jsonl_round_trip_via_stream(self):
        events = [event(i) for i in range(3)]
        buf = io.StringIO()
        write_trace_jsonl(events, buf)
        assert read_trace_jsonl(io.StringIO(buf.getvalue())) == events

    def test_jsonl_lines_are_one_json_object_each(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl([event(1), event(2)], path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert isinstance(json.loads(line), dict)


class TestReport:
    def test_build_report_shape(self):
        run = RunObservation(ObservabilityConfig(enabled=True))
        run.registry.counter("hits").inc(2.0)
        run.begin_request(0)
        run.record(1.0, "c", "e")
        report = build_report(run)
        assert report["obs_schema_version"] == 1
        assert any(r["name"] == "hits" for r in report["metrics"])
        assert report["trace"][0]["event"] == "e"
        assert report["trace_stats"]["recorded"] == 1
        json.dumps(report)  # persisted per sweep job; must serialize

    def test_metrics_csv(self):
        run = RunObservation(ObservabilityConfig(enabled=True))
        run.registry.counter("hits", component="efit").inc(3.0)
        csv_text = metrics_to_csv(build_report(run)["metrics"])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,labels,type,value,count,sum,min,max"
        assert any(line.startswith("hits,") for line in lines[1:])
