"""Bit-exactness tests for the vectorized batch kernels.

Every numpy kernel in :mod:`repro.vec` is checked element-by-element
against its scalar reference: the bit-parallel Hamming(72,64) matrix
kernels against the byte-table/mask-and-popcount implementations, the
batched bank schedule against the sequential earliest-fit recurrence,
and the batch mapping/membership helpers against their per-item
counterparts.  The ECC kernels are integer-only GF(2) math and must be
*exactly* equal; only the closed-form bank schedule is allowed float
tolerance (and is therefore kept off the simulated parity path).
"""

import random

import numpy as np
import pytest

from repro.ecc import hamming
from repro.ecc.codec import line_ecc_uncached
from repro.ecc.faults import flip_bit
from repro.nvmm.bank import Bank
from repro.nvmm.controller import MemoryController
from repro.vec.kernels import (
    encode_words_batch,
    line_ecc_batch,
    line_ecc_matrix,
    lines_to_matrix,
    syndrome_batch,
)


def _random_lines(count, seed=0xE5D):
    rng = random.Random(seed)
    return [rng.randbytes(64) for _ in range(count)]


class TestLineEccBatch:
    def test_matches_scalar_on_random_lines(self):
        lines = _random_lines(257)
        assert line_ecc_batch(lines) == [line_ecc_uncached(d) for d in lines]

    def test_structured_lines(self):
        lines = [bytes(64), b"\xff" * 64, bytes(range(64)),
                 (b"\x00\xff" * 32), bytes(64)[:-1] + b"\x01"]
        assert line_ecc_batch(lines) == [line_ecc_uncached(d) for d in lines]

    def test_single_bit_sensitivity(self):
        # Flipping any one bit must change the batch value exactly like
        # the scalar kernel says it does.
        data = _random_lines(1, seed=1)[0]
        rng = random.Random(2)
        flipped = [flip_bit(data, rng.randrange(512)) for _ in range(32)]
        assert line_ecc_batch(flipped) == [line_ecc_uncached(d)
                                           for d in flipped]

    def test_empty_batch(self):
        assert line_ecc_batch([]) == []

    def test_values_are_python_ints(self):
        values = line_ecc_batch(_random_lines(4, seed=3))
        assert all(type(v) is int for v in values)
        assert all(0 <= v < (1 << 64) for v in values)

    def test_lines_to_matrix_rejects_short_line(self):
        with pytest.raises(ValueError):
            lines_to_matrix([bytes(64), bytes(63)])

    def test_line_ecc_matrix_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            line_ecc_matrix(np.zeros((4, 32), dtype=np.uint8))


class TestWordKernels:
    def test_encode_words_batch_matches_scalar(self):
        rng = random.Random(4)
        words = [0, 1, (1 << 64) - 1] + [rng.getrandbits(64)
                                         for _ in range(500)]
        got = encode_words_batch(np.array(words, dtype=np.uint64))
        want = [hamming.encode_word(w) for w in words]
        assert got.tolist() == want

    def test_syndrome_batch_matches_reference(self):
        rng = random.Random(5)
        words, eccs = [], []
        for _ in range(200):
            word = rng.getrandbits(64)
            ecc = hamming.encode_word(word)
            # Intact, single-bit data error, and corrupted-ECC cases.
            for w, e in ((word, ecc),
                         (word ^ (1 << rng.randrange(64)), ecc),
                         (word, ecc ^ (1 << rng.randrange(8)))):
                words.append(w)
                eccs.append(e)
        position, parity = syndrome_batch(
            np.array(words, dtype=np.uint64), np.array(eccs, dtype=np.uint8))
        want = [hamming.syndrome_reference(w, e)
                for w, e in zip(words, eccs)]
        assert list(zip(position.tolist(), parity.tolist())) == want


class TestBankServiceBatch:
    """The closed-form burst schedule vs the sequential recurrence.

    Float-tolerant by design (the closed form associates additions
    differently); the *structure* — busy spans, counters — must match
    exactly.
    """

    def _sequential(self, arrivals, durations):
        bank = Bank(index=0)
        services = [bank.service(a, d) for a, d in zip(arrivals, durations)]
        return bank, services

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_sequential_service(self, seed):
        rng = random.Random(seed)
        arrivals = np.cumsum([rng.uniform(0.0, 300.0) for _ in range(200)])
        durations = np.array([rng.uniform(10.0, 150.0) for _ in range(200)])
        ref_bank, services = self._sequential(arrivals, durations)
        bank = Bank(index=0)
        starts, completions = bank.service_batch(arrivals, durations)
        np.testing.assert_allclose(
            starts, [s.start_ns for s in services], rtol=1e-12)
        np.testing.assert_allclose(
            completions, [s.completion_ns for s in services], rtol=1e-12)
        assert bank.services == ref_bank.services
        assert bank.busy_time_ns == pytest.approx(ref_bank.busy_time_ns)
        assert len(bank._intervals) == len(ref_bank._intervals)

    def test_saturated_burst_merges_into_one_span(self):
        bank = Bank(index=0)
        arrivals = np.array([0.0, 1.0, 2.0, 3.0])
        starts, completions = bank.service_batch(arrivals, 100.0)
        assert completions[-1] == 400.0
        assert bank._intervals == [(0.0, 400.0)]

    def test_idle_gaps_open_separate_spans(self):
        bank = Bank(index=0)
        arrivals = np.array([0.0, 1000.0, 2000.0])
        bank.service_batch(arrivals, 10.0)
        assert bank._intervals == [(0.0, 10.0), (1000.0, 1010.0),
                                   (2000.0, 2010.0)]

    def test_merges_with_existing_tail(self):
        bank = Bank(index=0)
        bank.service(0.0, 50.0)
        bank.service_batch(np.array([10.0, 20.0]), 25.0)
        # Both queued behind the tail: one contiguous busy span.
        assert bank._intervals == [(0.0, 100.0)]

    def test_scalar_service_composes_after_batch(self):
        bank = Bank(index=0)
        bank.service_batch(np.array([0.0, 5.0]), 40.0)
        svc = bank.service(50.0, 10.0)
        assert svc.start_ns == 80.0  # queued behind the batch tail
        assert svc.completion_ns == 90.0

    def test_validation_errors(self):
        bank = Bank(index=0)
        with pytest.raises(ValueError):
            bank.service_batch(np.array([]), 10.0)
        with pytest.raises(ValueError):
            bank.service_batch(np.array([5.0, 1.0]), 10.0)
        with pytest.raises(ValueError):
            bank.service_batch(np.array([-1.0, 2.0]), 10.0)
        with pytest.raises(ValueError):
            bank.service_batch(np.array([0.0, 1.0]), 0.0)
        bank.service(100.0, 50.0)
        with pytest.raises(ValueError):
            # Arrives before the busy tail's start.
            bank.service_batch(np.array([10.0]), 5.0)


class TestControllerBatchMapping:
    def test_bank_index_batch_matches_scalar(self):
        controller = MemoryController()
        rng = random.Random(6)
        lines = [rng.randrange(controller.config.num_lines)
                 for _ in range(512)]
        got = controller.bank_index_batch(lines)
        want = [controller.bank_for_line(n).index for n in lines]
        assert got.tolist() == want

    def test_bank_index_batch_range_checks(self):
        controller = MemoryController()
        with pytest.raises(ValueError):
            controller.bank_index_batch([-1])
        with pytest.raises(ValueError):
            controller.bank_index_batch([controller.config.num_lines])

    def test_bank_index_batch_empty(self):
        controller = MemoryController()
        assert controller.bank_index_batch([]).size == 0
