"""Tests for repro.common.types."""

import pytest

from repro.common.types import (
    CACHE_LINE_SIZE,
    WORDS_PER_LINE,
    ZERO_LINE,
    AccessType,
    LatencyBreakdown,
    MemoryRequest,
    OperationCost,
    PhysicalAddress,
    WritePathStage,
    is_zero_line,
    line_words,
    validate_line,
)


class TestValidateLine:
    def test_accepts_exact_size(self):
        data = bytes(CACHE_LINE_SIZE)
        assert validate_line(data) == data

    def test_converts_bytearray(self):
        out = validate_line(bytearray(CACHE_LINE_SIZE))
        assert isinstance(out, bytes)

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            validate_line(b"x" * 63)

    def test_rejects_long(self):
        with pytest.raises(ValueError):
            validate_line(b"x" * 65)

    def test_rejects_non_bytes(self):
        with pytest.raises(ValueError):
            validate_line("x" * 64)


class TestZeroLine:
    def test_zero_line_is_zero(self):
        assert is_zero_line(ZERO_LINE)

    def test_nonzero_line(self):
        assert not is_zero_line(b"\x01" + bytes(63))


class TestLineWords:
    def test_splits_into_eight_words(self):
        data = bytes(range(64))
        words = line_words(data)
        assert len(words) == WORDS_PER_LINE
        assert words[0] == bytes(range(8))
        assert words[7] == bytes(range(56, 64))

    def test_words_reassemble(self):
        data = bytes(range(64))
        assert b"".join(line_words(data)) == data


class TestMemoryRequest:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=0, access=AccessType.WRITE)

    def test_read_rejects_data(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=0, access=AccessType.READ, data=ZERO_LINE)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=13, access=AccessType.READ)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(address=-64, access=AccessType.READ)

    def test_line_index(self):
        req = MemoryRequest(address=640, access=AccessType.READ)
        assert req.line_index == 10

    def test_flags(self):
        r = MemoryRequest(address=0, access=AccessType.READ)
        w = MemoryRequest(address=0, access=AccessType.WRITE, data=ZERO_LINE)
        assert r.is_read and not r.is_write
        assert w.is_write and not w.is_read


class TestPhysicalAddress:
    def test_roundtrip(self):
        pa = PhysicalAddress.from_line_number(0x12345678AB)
        assert pa.line_number == 0x12345678AB

    def test_base_offset_packing(self):
        pa = PhysicalAddress.from_line_number(0x1FF)
        assert pa.base == 1
        assert pa.offset == 0xFF

    def test_byte_address(self):
        pa = PhysicalAddress.from_line_number(10)
        assert pa.byte_address == 640

    def test_forty_bit_limit(self):
        PhysicalAddress.from_line_number((1 << 40) - 1)
        with pytest.raises(ValueError):
            PhysicalAddress.from_line_number(1 << 40)

    def test_component_range_checks(self):
        with pytest.raises(ValueError):
            PhysicalAddress(base=1 << 32, offset=0)
        with pytest.raises(ValueError):
            PhysicalAddress(base=0, offset=256)

    def test_packed_size_is_five_bytes(self):
        # 4-byte Addr_base + 1-byte Addr_offsets, per the paper.
        assert PhysicalAddress.PACKED_SIZE == 5

    def test_addressable_space_is_64_tib(self):
        max_lines = 1 << (PhysicalAddress.BASE_BITS
                          + PhysicalAddress.OFFSET_BITS)
        assert max_lines * CACHE_LINE_SIZE == 64 * (1024 ** 4)


class TestOperationCost:
    def test_add(self):
        total = OperationCost(1.0, 2.0) + OperationCost(3.0, 4.0)
        assert total.latency_ns == 4.0
        assert total.energy_nj == 6.0

    def test_iadd(self):
        cost = OperationCost(1.0, 1.0)
        cost += OperationCost(2.0, 3.0)
        assert cost.latency_ns == 3.0
        assert cost.energy_nj == 4.0


class TestLatencyBreakdown:
    def test_accumulates(self):
        bd = LatencyBreakdown()
        bd.add(WritePathStage.ENCRYPTION, 10.0)
        bd.add(WritePathStage.ENCRYPTION, 5.0)
        bd.add(WritePathStage.WRITE_UNIQUE, 85.0)
        assert bd.total() == 100.0
        assert bd.fraction(WritePathStage.ENCRYPTION) == pytest.approx(0.15)

    def test_fractions_sum_to_one(self):
        bd = LatencyBreakdown()
        bd.add(WritePathStage.ENCRYPTION, 30.0)
        bd.add(WritePathStage.METADATA, 70.0)
        assert sum(bd.as_fractions().values()) == pytest.approx(1.0)

    def test_empty_breakdown(self):
        bd = LatencyBreakdown()
        assert bd.total() == 0.0
        assert bd.fraction(WritePathStage.ENCRYPTION) == 0.0
        assert bd.as_fractions() == {}

    def test_rejects_negative(self):
        bd = LatencyBreakdown()
        with pytest.raises(ValueError):
            bd.add(WritePathStage.ENCRYPTION, -1.0)
