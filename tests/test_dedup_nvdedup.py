"""Tests for the NV-Dedup related-work scheme."""

import pytest

from repro.common.types import AccessType, MemoryRequest, WritePathStage
from repro.dedup import make_scheme
from repro.dedup.nvdedup import NVDedupScheme


def wreq(addr, data, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         issue_time_ns=t)


def rreq(addr, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.READ, issue_time_ns=t)


LINE = bytes(range(64))
OTHER = b"\x1D" * 64


@pytest.fixture
def scheme(config):
    return NVDedupScheme(config)


class TestTwoTierFingerprinting:
    def test_factory(self, config):
        assert isinstance(make_scheme("NV-Dedup", config), NVDedupScheme)

    def test_unique_write_skips_strong_hash_latency(self, scheme):
        """The scheme's selling point: weak-miss lines pay only the CRC."""
        r = scheme.handle_write(wreq(0, LINE))
        assert not r.deduplicated
        # Only the CRC appears on the critical path.
        assert r.stages[WritePathStage.FINGERPRINT_COMPUTE] == \
            pytest.approx(scheme.weak_engine.latency_ns)
        assert scheme.counters.get("strong_hashes") == 0

    def test_duplicate_pays_both_hashes(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(64, LINE, t=500.0))
        assert r.deduplicated
        assert r.stages[WritePathStage.FINGERPRINT_COMPUTE] == \
            pytest.approx(scheme.weak_engine.latency_ns
                          + scheme.strong_engine.latency_ns)
        assert scheme.counters.get("strong_hashes") == 1

    def test_read_back_correct(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, LINE, t=500.0))
        scheme.handle_write(wreq(128, OTHER, t=1000.0))
        assert scheme.handle_read(rreq(64, t=2000.0)).data == LINE
        assert scheme.handle_read(rreq(128, t=2500.0)).data == OTHER

    def test_weak_collision_not_deduplicated(self, scheme):
        """Same CRC, different content: the strong hash must catch it."""
        # CRC32 over fixed-length input is affine over GF(2):
        # crc(a^b^c) = crc(a)^crc(b)^crc(c).  Gaussian-eliminate the
        # single-bit basis images to construct a nonzero bit pattern in the
        # kernel — a guaranteed collider against the zero line.
        import zlib
        base = bytes(64)
        c0 = zlib.crc32(base)
        basis = {}  # pivot bit -> (value, combo bitmask over input bits)
        collider = None
        for i in range(512):
            m = bytearray(64)
            m[i // 8] ^= 1 << (i % 8)
            v = zlib.crc32(bytes(m)) ^ c0
            combo = 1 << i
            while v:
                pivot = v.bit_length() - 1
                if pivot in basis:
                    bv, bc = basis[pivot]
                    v ^= bv
                    combo ^= bc
                else:
                    basis[pivot] = (v, combo)
                    break
            else:
                out = bytearray(64)
                for bit in range(512):
                    if combo >> bit & 1:
                        out[bit // 8] ^= 1 << (bit % 8)
                collider = bytes(out)
                break
        assert collider is not None and collider != base
        assert zlib.crc32(collider) == c0
        scheme.handle_write(wreq(0, base))
        r = scheme.handle_write(wreq(64, collider, t=500.0))
        assert not r.deduplicated
        assert scheme.counters.get("weak_collisions") == 1
        assert scheme.handle_read(rreq(0, t=1000.0)).data == base
        assert scheme.handle_read(rreq(64, t=1100.0)).data == collider

    def test_strong_fingerprints_tracked_per_frame(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        assert len(scheme._strong) == 1
        scheme.handle_write(wreq(0, OTHER, t=500.0))  # frees LINE's frame
        # One live frame -> one strong fingerprint retained.
        assert len(scheme._strong) == 1

    def test_metadata_includes_strong_store(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        footprint = scheme.metadata_footprint()
        assert footprint.nvmm_bytes >= scheme.strong_entry_size


class TestIntegrity:
    def test_no_data_loss_on_trace(self, config):
        from repro.sim import SimulationEngine
        from repro.workloads import TraceGenerator
        trace = TraceGenerator("dedup", seed=21).generate_list(2_500)
        engine = SimulationEngine(make_scheme("NV-Dedup", config))
        result = engine.run(iter(trace), app="dedup", total_hint=len(trace))
        assert result.write_reduction > 0.3

    def test_cheaper_hashes_than_sha1_on_unique_heavy_trace(self, config):
        from repro.workloads import TraceGenerator
        trace = TraceGenerator("namd", seed=23).generate_list(2_000)
        nv = make_scheme("NV-Dedup", config)
        sha1 = make_scheme("Dedup_SHA1", config)
        nv_total = sha1_total = 0.0
        for req in trace:
            if req.is_write:
                nv_total += nv.handle_write(req).latency_ns
                sha1_total += sha1.handle_write(req).latency_ns
        # namd is ~33% duplicates: most writes skip the strong hash.
        assert nv_total < sha1_total
