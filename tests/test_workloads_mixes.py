"""Tests for multiprogrammed workload mixes."""

import pytest

from repro.common.types import CACHE_LINE_SIZE
from repro.workloads.mixes import (
    CANONICAL_MIXES,
    MixedTraceGenerator,
    MixSpec,
    make_mix,
)


class TestMixSpec:
    def test_valid(self):
        MixSpec(app="gcc", core=0)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            MixSpec(app="quake", core=0)

    def test_negative_core(self):
        with pytest.raises(ValueError):
            MixSpec(app="gcc", core=-1)


class TestMixedTraceGenerator:
    def test_request_count(self):
        gen = MixedTraceGenerator(["gcc", "lbm"], seed=3)
        assert len(gen.generate_list(1_000)) == 1_000

    def test_issue_times_sorted(self):
        gen = MixedTraceGenerator(["gcc", "lbm", "namd"], seed=3)
        trace = gen.generate_list(1_500)
        times = [r.issue_time_ns for r in trace]
        assert times == sorted(times)

    def test_address_spaces_disjoint(self):
        gen = MixedTraceGenerator(["gcc", "deepsjeng"], seed=3)
        trace = gen.generate_list(3_000)
        # gcc gets [0, 65536) lines (48000 rounded up); deepsjeng starts
        # at the boundary.
        boundary = 65536 * CACHE_LINE_SIZE
        gcc_addrs = {r.address for r in trace if r.core == 0}
        other_addrs = {r.address for r in trace if r.core == 1}
        assert all(a < boundary for a in gcc_addrs)
        assert all(a >= boundary for a in other_addrs)
        assert not (gcc_addrs & other_addrs)

    def test_core_binding(self):
        specs = [MixSpec(app="gcc", core=3), MixSpec(app="lbm", core=5)]
        gen = MixedTraceGenerator(specs, seed=3)
        cores = {r.core for r in gen.generate_list(500)}
        assert cores <= {3, 5}

    def test_all_apps_contribute(self):
        gen = MixedTraceGenerator(["gcc", "lbm", "namd", "x264"], seed=3)
        trace = gen.generate_list(4_000)
        assert len({r.core for r in trace}) == 4

    def test_deterministic(self):
        a = MixedTraceGenerator(["gcc", "lbm"], seed=9).generate_list(800)
        b = MixedTraceGenerator(["gcc", "lbm"], seed=9).generate_list(800)
        assert [(r.address, r.data) for r in a] == \
               [(r.address, r.data) for r in b]

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            MixedTraceGenerator([])

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            MixedTraceGenerator(["gcc"]).generate_list(0)


class TestMakeMix:
    def test_canonical_names(self):
        for name in CANONICAL_MIXES:
            gen = make_mix(name, seed=1)
            assert len(gen.specs) == len(CANONICAL_MIXES[name])

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_mix("mix_doom")

    def test_explicit_apps(self):
        gen = make_mix(["gcc", "namd"])
        assert [s.app for s in gen.specs] == ["gcc", "namd"]


class TestMixThroughSimulation:
    def test_mix_runs_through_esd_with_integrity(self):
        from repro.common import small_test_config
        from repro.dedup import make_scheme
        from repro.sim import SimulationEngine
        trace = make_mix(["gcc", "deepsjeng"], seed=5).generate_list(2_000)
        engine = SimulationEngine(make_scheme("ESD", small_test_config()))
        result = engine.run(iter(trace), app="mix", total_hint=len(trace))
        assert result.writes > 0
        # The high-dup co-runner makes dedup visible on the merged stream.
        assert result.write_reduction > 0.3
