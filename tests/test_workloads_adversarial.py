"""Tests for the adversarial stress streams (dedup worst case,
fingerprint-collision pressure, and the phase-shifting mix)."""

import pytest

from repro.workloads.adversarial import (
    PHASE_SHIFT_NAME,
    PHASE_SHIFT_SCRIPT,
    adversarial_stream,
    adversarial_stream_names,
    phase_shift_phases,
    stream_instructions_per_access,
)
from repro.workloads.analysis import duplicate_stats
from repro.workloads.profiles import (
    ADVERSARIAL_PROFILES,
    adversarial_names,
    app_names,
    get_profile,
)


class TestRegistration:
    def test_roster_unchanged(self):
        """The paper's 20-app roster must not grow (figures iterate it)."""
        assert len(app_names()) == 20
        assert not any(a.startswith("adv-") for a in app_names())

    def test_adversarial_profiles_resolvable(self):
        for name in adversarial_names():
            assert get_profile(name).suite == "adversarial"

    def test_stream_names(self):
        names = adversarial_stream_names()
        assert set(adversarial_names()) < set(names)
        assert PHASE_SHIFT_NAME in names

    def test_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            list(adversarial_stream("adv-nope", 10))


class TestStreamProperties:
    @pytest.mark.parametrize("name", ["adv-dedup-worst",
                                      "adv-collision-heavy",
                                      PHASE_SHIFT_NAME])
    def test_length_and_determinism(self, name):
        a = list(adversarial_stream(name, 600, seed=7))
        b = list(adversarial_stream(name, 600, seed=7))
        assert len(a) == 600
        assert [r.seq for r in a] == list(range(1, 601))
        assert [(r.address, r.data, r.issue_time_ns) for r in a] == \
               [(r.address, r.data, r.issue_time_ns) for r in b]

    def test_dedup_worst_case_has_no_duplicate_supply(self):
        trace = list(adversarial_stream("adv-dedup-worst", 3_000))
        assert duplicate_stats(trace).duplicate_rate < 0.10

    def test_collision_heavy_is_duplicate_rich(self):
        trace = list(adversarial_stream("adv-collision-heavy", 3_000))
        assert duplicate_stats(trace).duplicate_rate > 0.80

    def test_phase_shift_spans_extremes(self):
        """The mix must swing the duplicate supply across phases."""
        requests = 4_000
        trace = list(adversarial_stream(PHASE_SHIFT_NAME, requests))
        assert len(trace) == requests
        bounds = [0]
        for phase in phase_shift_phases(requests):
            bounds.append(bounds[-1] + phase.requests)
        rates = [duplicate_stats(trace[lo:hi]).duplicate_rate
                 for lo, hi in zip(bounds, bounds[1:])]
        assert min(rates) < 0.15 and max(rates) > 0.75

    def test_phase_shift_split_covers_remainder(self):
        phases = phase_shift_phases(4_001)
        assert sum(p.requests for p in phases) == 4_001
        assert [p.app for p in phases] == list(PHASE_SHIFT_SCRIPT)

    def test_phase_shift_tiny_request_count(self):
        phases = phase_shift_phases(2)
        assert sum(p.requests for p in phases) == 2
        assert all(p.requests > 0 for p in phases)

    def test_instructions_per_access(self):
        for name in adversarial_stream_names():
            assert stream_instructions_per_access(name) > 0


class TestThroughEngine:
    @pytest.mark.parametrize("name", ["adv-dedup-worst", PHASE_SHIFT_NAME])
    def test_esd_runs_with_integrity(self, config, name):
        from repro.dedup import make_scheme
        from repro.sim import SimulationEngine
        trace = list(adversarial_stream(name, 1_200))
        engine = SimulationEngine(make_scheme("ESD", config))
        result = engine.run(iter(trace), app=name, total_hint=len(trace))
        assert result.writes > 0

    def test_worst_case_defeats_dedup(self, config):
        """ESD on the worst case must eliminate almost nothing."""
        from repro.dedup import make_scheme
        from repro.sim import SimulationEngine
        trace = list(adversarial_stream("adv-dedup-worst", 2_000))
        engine = SimulationEngine(make_scheme("ESD", config))
        result = engine.run(iter(trace), app="adv", total_hint=len(trace))
        assert result.write_reduction < 0.15
