"""Tests for the typed metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_NS,
    MetricsRegistry,
    ObsCounter,
    ObsGauge,
    ObsHistogram,
    format_labels,
)


class TestCounter:
    def test_inc(self):
        c = ObsCounter("writes", ())
        c.inc()
        c.inc(4.0)
        assert c.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ObsCounter("writes", ()).inc(-1.0)

    def test_reset(self):
        c = ObsCounter("writes", ())
        c.inc(3.0)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_set_overwrites(self):
        g = ObsGauge("hit_rate", ())
        g.set(0.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_reset(self):
        g = ObsGauge("hit_rate", ())
        g.set(0.9)
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_buckets_and_aggregates(self):
        h = ObsHistogram("lat", (), bounds=(10.0, 100.0))
        for v in (5.0, 50.0, 500.0, 7.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(562.0)
        assert h.min == 5.0
        assert h.max == 500.0
        assert h.mean == pytest.approx(140.5)
        assert h.bucket_counts == [2, 1, 1]  # <=10, <=100, +inf

    def test_empty_aggregates_are_nan(self):
        h = ObsHistogram("lat", ())
        assert math.isnan(h.min)
        assert math.isnan(h.max)
        assert math.isnan(h.mean)

    def test_boundary_value_lands_in_lower_bucket(self):
        h = ObsHistogram("lat", (), bounds=(10.0, 100.0))
        h.observe(10.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            ObsHistogram("lat", (), bounds=(100.0, 10.0))

    def test_reset(self):
        h = ObsHistogram("lat", (), bounds=(10.0,))
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.bucket_counts == [0, 0]
        assert math.isnan(h.min)


class TestRegistry:
    def test_same_key_shares_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", component="efit")
        b = reg.counter("hits", component="efit")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        efit = reg.counter("hits", component="efit")
        amt = reg.counter("hits", component="amt")
        assert efit is not amt
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(TypeError):
            reg.gauge("hits")

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(5.0)
        reg.reset()
        assert len(reg) == 1
        assert reg.counter("hits").value == 0.0

    def test_clear_drops_registrations(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        reg.clear()
        assert len(reg) == 0

    def test_instruments_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha")
        names = [inst.name for inst in reg.instruments()]
        assert names == ["alpha", "zeta"]


class TestSnapshot:
    def test_counter_and_gauge_rows(self):
        reg = MetricsRegistry()
        reg.counter("writes", component="scheme").inc(3.0)
        reg.gauge("hit_rate").set(0.75)
        rows = {row["name"]: row for row in reg.snapshot()}
        assert rows["writes"]["type"] == "counter"
        assert rows["writes"]["value"] == 3.0
        assert rows["writes"]["labels"] == {"component": "scheme"}
        assert rows["hit_rate"]["type"] == "gauge"
        assert rows["hit_rate"]["value"] == 0.75

    def test_histogram_row(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(10.0,))
        h.observe(5.0)
        (row,) = reg.snapshot()
        assert row["type"] == "histogram"
        assert row["count"] == 1
        assert row["sum"] == 5.0
        assert row["min"] == 5.0 and row["max"] == 5.0
        assert row["buckets"] == [{"le": 10.0, "count": 1},
                                  {"le": "+inf", "count": 0}]

    def test_empty_histogram_min_max_are_none(self):
        # The registry follows the empty-recorder sentinel rule: no data
        # exports as None, never as a fake 0.0.
        reg = MetricsRegistry()
        reg.histogram("lat")
        (row,) = reg.snapshot()
        assert row["min"] is None and row["max"] is None

    def test_snapshot_is_json_serializable(self):
        import json
        reg = MetricsRegistry()
        reg.counter("a", x="1").inc()
        reg.histogram("b", bounds=DEFAULT_LATENCY_BOUNDS_NS).observe(3.0)
        json.dumps(reg.snapshot())  # must not raise


class TestFlatView:
    def test_flat_keys_carry_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", component="efit").inc(2.0)
        reg.gauge("rate").set(0.5)
        reg.histogram("lat", bounds=(10.0,)).observe(4.0)
        flat = reg.as_flat()
        assert flat['hits{component="efit"}'] == 2.0
        assert flat["rate"] == 0.5
        assert flat["lat_count"] == 1.0
        assert flat["lat_sum"] == 4.0

    def test_format_labels(self):
        assert format_labels(()) == ""
        assert format_labels((("a", "1"), ("b", "2"))) == '{a="1",b="2"}'
