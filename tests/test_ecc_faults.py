"""Tests for ECC fault injection: ESD must not weaken error protection."""

import pytest

from repro.ecc.faults import (
    RandomFaultInjector,
    flip_bit,
    flip_bits,
    inject_and_decode,
)


class TestFlipBit:
    def test_flip_and_restore(self):
        data = bytes(64)
        flipped = flip_bit(data, 100)
        assert flipped != data
        assert flip_bit(flipped, 100) == data

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit(bytes(64), 512)

    def test_flip_bits_rejects_duplicates(self):
        with pytest.raises(ValueError):
            flip_bits(bytes(64), [3, 3])


class TestInjectAndDecode:
    def test_no_fault(self):
        out = inject_and_decode(bytes(range(64)), [])
        assert not out.corrected
        assert not out.detected_uncorrectable
        assert out.recovered

    def test_single_bit_recovers(self):
        out = inject_and_decode(bytes(range(64)), [17])
        assert out.corrected
        assert out.recovered
        assert not out.silent_corruption

    def test_double_bit_same_word_detected(self):
        out = inject_and_decode(bytes(range(64)), [0, 5])
        assert out.detected_uncorrectable
        assert not out.recovered
        assert not out.silent_corruption

    def test_two_bits_in_different_words_recover(self):
        # One flip per word is within SEC-DED's per-word correction power.
        out = inject_and_decode(bytes(range(64)), [10, 70])
        assert out.corrected
        assert out.recovered


class TestCampaigns:
    def test_single_bit_campaign_always_recovers(self):
        injector = RandomFaultInjector(seed=3)
        outcomes = injector.single_bit_campaign(trials=100)
        assert len(outcomes) == 100
        assert all(o.recovered for o in outcomes)
        assert not any(o.silent_corruption for o in outcomes)

    def test_double_bit_same_word_always_detected(self):
        injector = RandomFaultInjector(seed=3)
        outcomes = injector.double_bit_campaign(trials=100, same_word=True)
        assert all(o.detected_uncorrectable for o in outcomes)

    def test_double_bit_cross_word_always_recovers(self):
        injector = RandomFaultInjector(seed=3)
        outcomes = injector.double_bit_campaign(trials=100, same_word=False)
        assert all(o.recovered for o in outcomes)

    def test_campaigns_deterministic(self):
        a = RandomFaultInjector(seed=11).single_bit_campaign(10)
        b = RandomFaultInjector(seed=11).single_bit_campaign(10)
        assert [o.injected_bits for o in a] == [o.injected_bits for o in b]
