"""Roster-wide smoke: every application profile drives every scheme cleanly.

Short traces, full integrity verification — the broad net that catches
profile/scheme interactions the targeted tests miss.
"""

import pytest

from repro.common import small_test_config
from repro.dedup import SCHEME_NAMES, make_scheme
from repro.sim import EngineConfig, SimulationEngine
from repro.workloads import TraceGenerator, app_names, get_profile


@pytest.mark.parametrize("app", app_names())
def test_esd_runs_every_app(app):
    trace = TraceGenerator(app, seed=51).generate_list(1_200)
    engine = SimulationEngine(make_scheme("ESD", small_test_config()),
                              EngineConfig(warmup_fraction=0.0))
    result = engine.run(iter(trace), app=app, total_hint=len(trace))
    profile = get_profile(app)
    # Dedup effectiveness tracks the profile's duplicate rate loosely.
    assert result.write_reduction <= profile.duplicate_rate + 0.1
    if profile.duplicate_rate > 0.9:
        assert result.write_reduction > 0.6
    assert result.mean_write_latency_ns > 0


@pytest.mark.slow
@pytest.mark.parametrize("scheme_name", list(SCHEME_NAMES))
def test_every_scheme_survives_high_churn(scheme_name):
    """Tiny caches + tiny device => constant replacement and recycling."""
    from repro.common.config import (MetadataCacheConfig, PCMConfig,
                                     SystemConfig)
    from repro.common.units import kib, mib
    config = SystemConfig(
        pcm=PCMConfig(capacity_bytes=mib(2), num_banks=2),
        metadata_cache=MetadataCacheConfig(efit_bytes=512, amt_bytes=512))
    trace = TraceGenerator("mcf", seed=53).generate_list(3_000)
    engine = SimulationEngine(make_scheme(scheme_name, config),
                              EngineConfig(warmup_fraction=0.0))
    engine.run(iter(trace), app="mcf", total_hint=len(trace))
