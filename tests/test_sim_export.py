"""Tests for result serialization (JSON/CSV export)."""

import json

import pytest

from repro.sim.export import (
    CSV_COLUMNS,
    csv_string,
    grid_to_dict,
    read_json,
    result_to_dict,
    write_csv,
    write_json,
)
from repro.sim.runner import ExperimentConfig, run_grid


@pytest.fixture(scope="module")
def grid(request):
    from repro.common import small_test_config
    cfg = ExperimentConfig(apps=["gcc"], schemes=["Baseline", "ESD"],
                           requests_per_app=1_500,
                           system=small_test_config())
    return run_grid(cfg)


class TestResultToDict:
    def test_structure(self, grid):
        d = result_to_dict(grid[("gcc", "ESD")])
        assert d["app"] == "gcc"
        assert d["scheme"] == "ESD"
        assert d["latency_ns"]["write_p99"] >= d["latency_ns"]["write_p50"]
        assert "efit_hit_rate" in d["extras"]
        assert "write_path_profile" in d
        assert d["metadata_bytes"]["nvmm"] >= 0

    def test_json_serializable(self, grid):
        for result in grid.values():
            json.dumps(result_to_dict(result))

    def test_empty_recorder_exports_none_not_zero(self):
        # Regression: an empty LatencyRecorder percentile is NaN; the
        # export boundary maps it to None so JSON consumers cannot
        # mistake "no traffic" for a zero-latency tail.
        from repro.common.stats import LatencyRecorder
        from repro.sim.metrics import SimulationResult
        result = SimulationResult(app="gcc", scheme="ESD",
                                  write_latency=LatencyRecorder(),
                                  read_latency=LatencyRecorder())
        d = result_to_dict(result)
        assert d["latency_ns"]["write_p99"] is None
        assert d["latency_ns"]["read_p99"] is None
        assert d["latency_ns"]["write_max"] is None
        json.dumps(d)  # None survives serialization; NaN would not

    def test_empty_recorder_csv_cell_is_blank(self):
        from repro.common.stats import LatencyRecorder
        from repro.sim.metrics import SimulationResult
        result = SimulationResult(app="gcc", scheme="ESD",
                                  write_latency=LatencyRecorder(),
                                  read_latency=LatencyRecorder())
        text = csv_string({("gcc", "ESD"): result})
        row = text.strip().splitlines()[1].split(",")
        p99_idx = CSV_COLUMNS.index("write_p99_ns")
        assert row[p99_idx] == ""

    def test_energy_breakdown_present(self, grid):
        d = result_to_dict(grid[("gcc", "Baseline")])
        assert d["energy_nj"]["pcm_write"] > 0
        assert d["energy_total_nj"] == pytest.approx(
            sum(d["energy_nj"].values()))


class TestJSONRoundtrip:
    def test_write_and_read(self, grid, tmp_path):
        path = tmp_path / "grid.json"
        write_json(grid, path)
        loaded = read_json(path)
        assert len(loaded["results"]) == len(grid)
        schemes = {r["scheme"] for r in loaded["results"]}
        assert schemes == {"Baseline", "ESD"}

    def test_single_result(self, grid, tmp_path):
        path = tmp_path / "one.json"
        write_json(grid[("gcc", "ESD")], path)
        loaded = read_json(path)
        assert loaded["scheme"] == "ESD"

    def test_grid_to_dict(self, grid):
        d = grid_to_dict(grid)
        assert len(d["results"]) == 2


class TestCSV:
    def test_write_csv(self, grid, tmp_path):
        path = tmp_path / "grid.csv"
        rows = write_csv(grid, path)
        assert rows == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0] == ",".join(CSV_COLUMNS)
        assert len(lines) == 3

    def test_csv_string_parsable(self, grid):
        import csv as csv_mod
        import io
        text = csv_string(grid)
        parsed = list(csv_mod.reader(io.StringIO(text)))
        assert parsed[0] == CSV_COLUMNS
        for row in parsed[1:]:
            assert len(row) == len(CSV_COLUMNS)
            float(row[CSV_COLUMNS.index("write_mean_ns")])
