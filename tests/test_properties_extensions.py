"""Property-based tests for the extension modules.

Hypothesis sweeps over the newer substrates: ESD-Delta's read-after-write
correctness under arbitrary near-duplicate interleavings, split-counter
round-trips under any write sequence, Start-Gap translation invariants
under random move schedules, and mix/phase stream structure.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import small_test_config
from repro.common.types import AccessType, CACHE_LINE_SIZE, MemoryRequest
from repro.core.esd_delta import ESDDeltaScheme
from repro.crypto.split_counters import (
    SplitCounterConfig,
    SplitCounterModeEngine,
)
from repro.nvmm.wearlevel import StartGapWearLeveler, WearLevelerConfig
from repro.workloads.mixes import MixedTraceGenerator
from repro.workloads.phases import PhasedTraceGenerator

WORDS = st.binary(min_size=8, max_size=8)


class TestESDDeltaProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 7),          # logical line
                  st.integers(0, 3),          # base content id
                  st.integers(0, 7),          # mutated word index
                  WORDS),                     # mutation payload
        min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_read_after_write_with_near_duplicates(self, ops):
        """Arbitrary near-duplicate interleavings never lose data."""
        scheme = ESDDeltaScheme(small_test_config())
        bases = [bytes([b]) * CACHE_LINE_SIZE for b in (1, 2, 3, 4)]
        shadow = {}
        t = 0.0
        for line, base_id, word, payload in ops:
            t += 300.0
            data = bytearray(bases[base_id])
            data[word * 8:(word + 1) * 8] = payload
            data = bytes(data)
            addr = line * 64
            scheme.handle_write(MemoryRequest(
                address=addr, access=AccessType.WRITE, data=data,
                issue_time_ns=t))
            shadow[addr] = data
        t += 1000.0
        for addr, expected in shadow.items():
            result = scheme.handle_read(MemoryRequest(
                address=addr, access=AccessType.READ, issue_time_ns=t))
            assert result.data == expected


class TestSplitCounterProperties:
    @given(st.lists(st.tuples(st.integers(0, 127), WORDS),
                    min_size=1, max_size=80),
           st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_under_any_write_sequence(self, ops, minor_bits):
        engine = SplitCounterModeEngine(
            config=SplitCounterConfig(minor_bits=minor_bits))
        latest = {}
        for line, word in ops:
            plaintext = word * 8
            engine.encrypt(plaintext, line)
            latest[line] = plaintext
        for line, plaintext in latest.items():
            assert engine.decrypt(line) == plaintext

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_counters_never_decrease_within_major(self, lines):
        table_cfg = SplitCounterConfig(minor_bits=7)
        from repro.crypto.split_counters import SplitCounterTable
        table = SplitCounterTable(table_cfg)
        last = {}
        for line in lines:
            major, minor = table.advance(line)
            if line in last:
                prev_major, prev_minor = last[line]
                assert (major, minor) > (prev_major, 0)
                if major == prev_major:
                    assert minor == prev_minor + 1
            last[line] = (major, minor)


class TestWearLevelerProperties:
    @given(st.integers(2, 64), st.integers(1, 10), st.integers(1, 300))
    @settings(max_examples=40)
    def test_translation_always_injective(self, frames, interval, writes):
        wl = StartGapWearLeveler(
            frames, WearLevelerConfig(gap_move_interval=interval))
        for _ in range(writes):
            wl.record_write()
            mapping = [wl.translate(i) for i in range(frames)]
            assert len(set(mapping)) == frames
            assert all(0 <= p <= frames for p in mapping)


class TestMixProperties:
    @given(st.lists(st.sampled_from(["gcc", "lbm", "namd", "x264"]),
                    min_size=1, max_size=4, unique=True),
           st.integers(50, 400))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_merged_stream_structure(self, apps, count):
        gen = MixedTraceGenerator(apps, seed=3)
        trace = gen.generate_list(count)
        assert len(trace) == count
        times = [r.issue_time_ns for r in trace]
        assert times == sorted(times)
        assert {r.core for r in trace} <= set(range(len(apps)))


class TestPhaseProperties:
    @given(st.lists(st.tuples(st.sampled_from(["gcc", "deepsjeng", "namd"]),
                              st.integers(20, 200)),
                    min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_clock_and_seq_monotonic(self, phase_specs):
        gen = PhasedTraceGenerator(phase_specs, seed=5)
        trace = gen.generate_list()
        assert len(trace) == sum(n for _, n in phase_specs)
        times = [r.issue_time_ns for r in trace]
        seqs = [r.seq for r in trace]
        assert times == sorted(times)
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
