"""Crash-consistency tests: a SIGKILL mid-write must never leave a
file at the destination path that parses as a complete artifact.

Both the trace capture and the checkpoint writer go through
``atomic_binary_writer`` (same-directory temp file, fsync, rename), so
the destination either holds the previous complete file or nothing —
the temp file absorbs the torn bytes.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common.errors import CheckpointError, TraceFormatError
from repro.sim.checkpoint import load_checkpoint
from repro.workloads.trace import read_trace_list, trace_record_count

_ENV = dict(os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"))


def _run_child(code):
    """Run a self-SIGKILLing child; returns its completed process."""
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, env=_ENV,
                          timeout=120)
    return proc


_KILL_MID_CAPTURE = """
import os, signal
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import capture_trace

def stream():
    for i, req in enumerate(
            TraceGenerator("gcc", seed=3).generate(5000)):
        if i == 900:
            os.kill(os.getpid(), signal.SIGKILL)
        yield req

capture_trace(stream(), {path!r}, chunk_records=64)
"""

_KILL_BEFORE_RENAME = """
import os, signal
from repro.common import atomic
from repro.sim.engine import SimulationEngine
from repro.sim.checkpoint import write_checkpoint
from repro.common import small_test_config
from repro.dedup import make_scheme
from repro.workloads.generator import TraceGenerator

real_replace = os.replace
def killing_replace(src, dst):
    os.kill(os.getpid(), signal.SIGKILL)
atomic.os.replace = killing_replace

engine = SimulationEngine(make_scheme("ESD", small_test_config()))
session = engine.open_session(app="gcc", total_hint=800)
session.feed(TraceGenerator("gcc", seed=3).generate(800))
write_checkpoint(session, {path!r})
"""


class TestCaptureCrash:
    def test_killed_capture_leaves_no_destination(self, tmp_path):
        path = tmp_path / "cap.esdtrace"
        proc = _run_child(_KILL_MID_CAPTURE.format(path=str(path)))
        assert proc.returncode == -signal.SIGKILL
        assert not path.exists()
        # The torn bytes live in the temp file — and must not parse.
        leftovers = list(tmp_path.iterdir())
        for leftover in leftovers:
            with pytest.raises(TraceFormatError):
                read_trace_list(leftover)

    def test_killed_recapture_keeps_previous_complete_file(self, tmp_path):
        path = tmp_path / "cap.esdtrace"
        from repro.workloads.generator import TraceGenerator
        from repro.workloads.trace import capture_trace
        capture_trace(TraceGenerator("lbm", seed=5).generate(150), path)
        before = path.read_bytes()
        proc = _run_child(_KILL_MID_CAPTURE.format(path=str(path)))
        assert proc.returncode == -signal.SIGKILL
        assert path.read_bytes() == before
        assert trace_record_count(path) == 150


class TestCheckpointCrash:
    def test_kill_before_rename_leaves_no_destination(self, tmp_path):
        path = tmp_path / "run.ckpt"
        proc = _run_child(_KILL_BEFORE_RENAME.format(path=str(path)))
        assert proc.returncode == -signal.SIGKILL
        assert not path.exists()

    def test_leftover_temp_is_not_a_checkpoint_path(self, tmp_path):
        """A torn temp file must fail checkpoint validation loudly."""
        torn = tmp_path / ".run.ckpt.1234.tmp"
        torn.write_bytes(b"ESDCKPT1" + b"\x00" * 40)
        with pytest.raises(CheckpointError):
            load_checkpoint(torn)

    def test_kill_during_checkpointed_run_never_tears_file(self, tmp_path):
        """SIGKILL an actual ``repro run --checkpoint-every`` midway:
        whenever the signal lands, the checkpoint file on disk is either
        absent or loads (and resumes) cleanly."""
        ck = tmp_path / "mid.ckpt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "run", "--scheme", "ESD",
             "--app", "gcc", "--requests", "60000",
             "--checkpoint", str(ck), "--checkpoint-every", "500"],
            env=_ENV, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 60
            while not ck.exists() and time.time() < deadline:
                time.sleep(0.02)
            assert ck.exists(), "no checkpoint appeared within 60s"
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        restored = load_checkpoint(ck)
        assert restored.meta["scheme"] == "ESD"
        assert 0 < restored.consumed <= 60_000
