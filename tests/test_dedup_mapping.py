"""Tests for the mapping table and frame reference counting."""

import pytest

from repro.common.config import PCMConfig
from repro.common.units import mib
from repro.dedup.mapping import FrameRefcounts, MappingTable
from repro.nvmm.allocator import FrameAllocator
from repro.nvmm.controller import MemoryController


@pytest.fixture
def controller():
    return MemoryController(PCMConfig(capacity_bytes=mib(4), num_banks=4))


def make_table(controller, cache_bytes=16 * 10, entry_size=16):
    return MappingTable(cache_bytes=cache_bytes, entry_size=entry_size,
                        controller=controller)


class TestMappingTable:
    def test_lookup_absent(self, controller):
        table = make_table(controller)
        frame, t, hit = table.lookup(5, 0.0)
        assert frame is None
        assert not hit
        assert t > 0.0  # probe + NVMM read
        assert controller.metadata_reads == 1

    def test_update_then_lookup_hits_cache(self, controller):
        table = make_table(controller)
        table.update(5, 42, 0.0)
        frame, _t, hit = table.lookup(5, 10.0)
        assert frame == 42
        assert hit

    def test_cache_hit_costs_probe_only(self, controller):
        table = make_table(controller)
        table.update(5, 42, 0.0)
        before = controller.metadata_reads
        _, t, _ = table.lookup(5, 100.0)
        assert controller.metadata_reads == before
        assert t == 100.0 + table.probe_latency_ns

    def test_dirty_eviction_writes_home(self, controller):
        table = make_table(controller, cache_bytes=16 * 2)  # 2 entries
        for i in range(10):
            table.update(i, i + 100, 0.0)
        # Evicted dirty entries must land in the home region.
        assert table.current_frame(0) == 100
        assert controller.metadata_writes > 0

    def test_lookup_after_eviction_reads_home(self, controller):
        table = make_table(controller, cache_bytes=16 * 2)
        table.update(0, 7, 0.0)
        table.update(1, 8, 0.0)
        table.update(2, 9, 0.0)  # evicts entry 0
        frame, _, hit = table.lookup(0, 100.0)
        assert frame == 7
        assert not hit

    def test_update_overwrites(self, controller):
        table = make_table(controller)
        table.update(3, 10, 0.0)
        table.update(3, 11, 1.0)
        assert table.current_frame(3) == 11

    def test_hit_rate(self, controller):
        table = make_table(controller)
        table.update(0, 1, 0.0)
        table.lookup(0, 1.0)   # hit
        table.lookup(99, 2.0)  # miss
        assert table.hit_rate == 0.5

    def test_entry_count_spans_cache_and_home(self, controller):
        table = make_table(controller, cache_bytes=16 * 2)
        for i in range(6):
            table.update(i, i, 0.0)
        assert table.entry_count == 6

    def test_footprints(self, controller):
        table = make_table(controller, cache_bytes=16 * 4)
        for i in range(8):
            table.update(i, i, 0.0)
        assert table.onchip_bytes() <= 4 * 16
        assert table.nvmm_bytes() == 8 * 16

    def test_validation(self, controller):
        with pytest.raises(ValueError):
            MappingTable(cache_bytes=0, entry_size=16, controller=controller)


class TestWriteCoalescing:
    def test_dirty_writebacks_coalesce(self, controller):
        # entry_size 16 -> 4 entries per 64-byte metadata line.
        table = make_table(controller, cache_bytes=16 * 1, entry_size=16)
        for i in range(16):
            table.update(i, i, 0.0)
        # 15 dirty evictions coalesce into floor(15/4)=3 PCM writes.
        assert controller.metadata_writes == 3


class TestFrameRefcounts:
    def test_acquire_release(self):
        alloc = FrameAllocator(4)
        refs = FrameRefcounts(alloc)
        f = alloc.allocate()
        assert refs.acquire(f) == 1
        assert refs.acquire(f) == 2
        assert refs.release(f) == 1
        assert alloc.is_allocated(f)

    def test_release_to_zero_frees_frame(self):
        alloc = FrameAllocator(4)
        refs = FrameRefcounts(alloc)
        f = alloc.allocate()
        refs.acquire(f)
        assert refs.release(f) == 0
        assert not alloc.is_allocated(f)

    def test_release_without_reference_rejected(self):
        alloc = FrameAllocator(4)
        refs = FrameRefcounts(alloc)
        with pytest.raises(ValueError):
            refs.release(0)

    def test_live_frames(self):
        alloc = FrameAllocator(4)
        refs = FrameRefcounts(alloc)
        a, b = alloc.allocate(), alloc.allocate()
        refs.acquire(a)
        refs.acquire(b)
        assert refs.live_frames() == 2
        refs.release(a)
        assert refs.live_frames() == 1
