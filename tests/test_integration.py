"""Cross-scheme integration tests: the invariants every scheme must share.

These are the guarantees the paper's Section III-E argues for —
deduplication must never lose data, regardless of collisions, replacement,
reference-count overflow, or frame recycling — exercised uniformly across
Baseline, Dedup_SHA1, DeWrite, and ESD on realistic traces.
"""

import pytest

from repro.common import small_test_config
from repro.dedup import SCHEME_NAMES, make_scheme
from repro.sim import EngineConfig, SimulationEngine
from repro.workloads import TraceGenerator

ALL_SCHEMES = list(SCHEME_NAMES)


def run_scheme(name, trace, config=None):
    config = config or small_test_config()
    engine = SimulationEngine(make_scheme(name, config),
                              EngineConfig(warmup_fraction=0.0))
    return engine.run(iter(trace), app="test", total_hint=len(trace))


class TestDataIntegrity:
    """verify_integrity is on in the fixtures: any stale read raises."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("app", ["gcc", "deepsjeng", "lbm", "leela"])
    def test_no_scheme_loses_data(self, scheme, app):
        trace = TraceGenerator(app, seed=13).generate_list(2_500)
        run_scheme(scheme, trace)  # raises IntegrityError on violation

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_integrity_under_metadata_pressure(self, scheme):
        """Tiny metadata caches force constant eviction/recycling."""
        from repro.common.units import kib
        config = small_test_config().with_metadata_cache(
            efit_bytes=256, amt_bytes=kib(1))
        trace = TraceGenerator("mcf", seed=17).generate_list(2_500)
        run_scheme(scheme, trace, config)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_integrity_with_referh_pressure(self, scheme):
        config = small_test_config().with_esd(refer_h_max=2)
        trace = TraceGenerator("deepsjeng", seed=19).generate_list(2_000)
        run_scheme(scheme, trace, config)


class TestSchemeEquivalence:
    """All schemes must expose the same logical memory contents."""

    def test_final_read_values_identical_across_schemes(self):
        trace = TraceGenerator("x264", seed=23).generate_list(2_000)
        # Collect the data each scheme returns for the final read of every
        # address; the engine already verifies against the shadow copy, so
        # equal shadow means equal observable state.
        expected = {}
        for req in trace:
            if req.is_write:
                expected[req.address] = req.data
        for scheme_name in ALL_SCHEMES:
            scheme = make_scheme(scheme_name, small_test_config())
            for req in trace:
                if req.is_write:
                    scheme.handle_write(req)
            for address, data in list(expected.items())[:200]:
                from repro.common.types import AccessType, MemoryRequest
                read = MemoryRequest(address=address, access=AccessType.READ,
                                     issue_time_ns=10**9)
                assert scheme.handle_read(read).data == data, scheme_name


class TestDedupEffectiveness:
    def test_dedup_schemes_reduce_pcm_writes(self):
        trace = TraceGenerator("lbm", seed=29).generate_list(3_000)
        results = {name: run_scheme(name, trace) for name in ALL_SCHEMES}
        base = results["Baseline"].pcm_data_writes
        for name in ("Dedup_SHA1", "DeWrite", "ESD"):
            assert results[name].pcm_data_writes < base, name

    def test_full_dedup_catches_at_least_selective(self):
        trace = TraceGenerator("gcc", seed=29).generate_list(3_000)
        results = {name: run_scheme(name, trace)
                   for name in ("Dedup_SHA1", "ESD")}
        assert (results["Dedup_SHA1"].dedup_eliminated
                >= results["ESD"].dedup_eliminated - 5)

    def test_esd_space_efficiency(self):
        """Dedup shrinks the live-frame population vs Baseline."""
        trace = TraceGenerator("deepsjeng", seed=31).generate_list(3_000)
        base = make_scheme("Baseline", small_test_config())
        esd = make_scheme("ESD", small_test_config())
        for req in trace:
            if req.is_write:
                base.handle_write(req)
                esd.handle_write(req)
        assert esd.allocator.allocated_count < base.allocator.allocated_count


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_bitwise_reproducible(self, scheme):
        def one_run():
            trace = TraceGenerator("dedup", seed=37).generate_list(2_000)
            return run_scheme(scheme, trace)
        a, b = one_run(), one_run()
        assert a.mean_write_latency_ns == b.mean_write_latency_ns
        assert a.mean_read_latency_ns == b.mean_read_latency_ns
        assert a.total_energy_nj == b.total_energy_nj
        assert a.pcm_data_writes == b.pcm_data_writes
        assert a.ipc == b.ipc


class TestEnduranceStory:
    def test_esd_spreads_or_reduces_wear(self):
        """Fewer writes must reach PCM cells under ESD (Figure 11's point)."""
        trace = TraceGenerator("roms", seed=41).generate_list(3_000)
        base = make_scheme("Baseline", small_test_config())
        esd = make_scheme("ESD", small_test_config())
        for req in trace:
            if req.is_write:
                base.handle_write(req)
                esd.handle_write(req)
        base_wear = base.controller.device.wear_stats()
        esd_wear = esd.controller.device.wear_stats()
        assert esd_wear.total_writes < base_wear.total_writes


class TestPaperHeadlines:
    """Slow-ish sanity checks of the paper's core comparative claims."""

    def test_esd_fastest_writes_on_high_dup_app(self):
        trace = TraceGenerator("deepsjeng", seed=43).generate_list(4_000)
        from repro.sim.runner import scaled_system_config
        results = {name: None for name in ALL_SCHEMES}
        for name in ALL_SCHEMES:
            engine = SimulationEngine(
                make_scheme(name, scaled_system_config()))
            results[name] = engine.run(iter(trace), app="deepsjeng",
                                       total_hint=len(trace))
        write_lat = {n: r.mean_write_latency_ns for n, r in results.items()}
        assert write_lat["ESD"] < write_lat["Baseline"]
        assert write_lat["ESD"] < write_lat["Dedup_SHA1"]
        assert write_lat["ESD"] < write_lat["DeWrite"]

    def test_esd_lowest_energy(self):
        trace = TraceGenerator("mcf", seed=47).generate_list(4_000)
        from repro.sim.runner import scaled_system_config
        energies = {}
        for name in ALL_SCHEMES:
            engine = SimulationEngine(
                make_scheme(name, scaled_system_config()))
            r = engine.run(iter(trace), app="mcf", total_hint=len(trace))
            energies[name] = r.total_energy_nj
        assert energies["ESD"] == min(energies.values())
