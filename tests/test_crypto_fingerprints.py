"""Tests for fingerprint engines (SHA-1, MD5, CRC-32, truncation)."""

import hashlib
import zlib

import pytest

from repro.crypto.costs import CryptoCosts, OperationCostModel
from repro.crypto.fingerprints import (
    CRC32Engine,
    FingerprintEngine,
    MD5Engine,
    SHA1Engine,
    TruncatedEngine,
    make_engine,
)


class TestSHA1Engine:
    def test_matches_hashlib(self):
        data = bytes(range(64))
        expected = int.from_bytes(hashlib.sha1(data).digest(), "big")
        assert SHA1Engine().fingerprint(data) == expected

    def test_width(self):
        e = SHA1Engine()
        assert e.bits == 160
        assert e.fingerprint_size_bytes() == 20

    def test_paper_latency(self):
        assert SHA1Engine().latency_ns == 321.0

    def test_size_check(self):
        with pytest.raises(ValueError):
            SHA1Engine().fingerprint(b"tiny")


class TestMD5Engine:
    def test_matches_hashlib(self):
        data = bytes(range(64))
        expected = int.from_bytes(hashlib.md5(data).digest(), "big")
        assert MD5Engine().fingerprint(data) == expected

    def test_paper_latency(self):
        assert MD5Engine().latency_ns == 312.0


class TestCRC32Engine:
    def test_matches_zlib(self):
        data = bytes(range(64))
        assert CRC32Engine().fingerprint(data) == zlib.crc32(data) & 0xFFFFFFFF

    def test_width(self):
        assert CRC32Engine().bits == 32
        assert CRC32Engine().fingerprint_size_bytes() == 4

    def test_cheaper_than_sha1(self):
        crc, sha = CRC32Engine(), SHA1Engine()
        assert crc.latency_ns < sha.latency_ns
        assert crc.energy_nj < sha.energy_nj


class TestTruncatedEngine:
    def test_truncation_masks_low_bits(self):
        inner = SHA1Engine()
        t = TruncatedEngine(inner, 16)
        data = bytes(range(64))
        assert t.fingerprint(data) == inner.fingerprint(data) & 0xFFFF
        assert t.bits == 16
        assert t.name == "sha1_16"

    def test_rejects_widening(self):
        with pytest.raises(ValueError):
            TruncatedEngine(CRC32Engine(), 64)

    def test_inherits_costs(self):
        t = TruncatedEngine(SHA1Engine(), 8)
        assert t.latency_ns == SHA1Engine().latency_ns


class TestMakeEngine:
    @pytest.mark.parametrize("name,bits", [
        ("sha1", 160), ("md5", 128), ("crc32", 32), ("ecc", 64)])
    def test_factory(self, name, bits):
        engine = make_engine(name)
        assert engine.name == name
        assert engine.bits == bits
        assert isinstance(engine, FingerprintEngine)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_engine("blake3")

    def test_custom_costs(self):
        costs = CryptoCosts(sha1=OperationCostModel(latency_ns=100.0,
                                                    energy_nj=1.0))
        assert make_engine("sha1", costs).latency_ns == 100.0


class TestCollisionBehaviour:
    def test_crc_collides_more_easily_than_sha1(self):
        # Construct a modest corpus; CRC32 truncated to 8 bits must collide,
        # SHA-1 must not.
        crc8 = TruncatedEngine(CRC32Engine(), 8)
        sha = SHA1Engine()
        seen_crc = {}
        seen_sha = {}
        crc_collisions = sha_collisions = 0
        for i in range(2000):
            line = i.to_bytes(8, "little") + bytes(56)
            f1 = crc8.fingerprint(line)
            f2 = sha.fingerprint(line)
            crc_collisions += f1 in seen_crc
            sha_collisions += f2 in seen_sha
            seen_crc[f1] = i
            seen_sha[f2] = i
        assert crc_collisions > 0
        assert sha_collisions == 0
