"""Tests for the Dedup_SHA1 full-deduplication scheme."""

import pytest

from repro.common.types import AccessType, MemoryRequest, WritePathStage
from repro.dedup.dedup_sha1 import DedupSHA1Scheme


def wreq(addr, data, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         issue_time_ns=t)


def rreq(addr, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.READ, issue_time_ns=t)


LINE = bytes(range(64))
OTHER = b"\x77" * 64


@pytest.fixture
def scheme(config):
    return DedupSHA1Scheme(config)


class TestDeduplication:
    def test_duplicate_content_deduplicated(self, scheme):
        r1 = scheme.handle_write(wreq(0, LINE))
        r2 = scheme.handle_write(wreq(64, LINE, t=500.0))
        assert not r1.deduplicated
        assert r2.deduplicated
        assert not r2.wrote_line
        assert scheme.controller.data_writes == 1
        assert scheme.allocator.allocated_count == 1

    def test_distinct_content_not_deduplicated(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(64, OTHER, t=500.0))
        assert not r.deduplicated
        assert scheme.controller.data_writes == 2

    def test_dedup_read_back_correct(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, LINE, t=500.0))
        assert scheme.handle_read(rreq(0, t=1000.0)).data == LINE
        assert scheme.handle_read(rreq(64, t=1500.0)).data == LINE

    def test_overwrite_releases_old_frame(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(0, OTHER, t=500.0))
        # The old frame held the only reference and must be recycled.
        assert scheme.refcounts.live_frames() == 1
        assert scheme.handle_read(rreq(0, t=1000.0)).data == OTHER

    def test_self_rewrite_same_content(self, scheme):
        """Rewriting the same content to the same address must be safe."""
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(0, LINE, t=500.0))
        assert r.deduplicated
        assert scheme.handle_read(rreq(0, t=1000.0)).data == LINE
        assert scheme.refcounts.count(0) == 1

    def test_freed_frame_fingerprint_invalidated(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(0, OTHER, t=500.0))  # frees LINE's frame
        # LINE's fingerprint must be gone: a new write of LINE is unique.
        r = scheme.handle_write(wreq(64, LINE, t=1000.0))
        assert not r.deduplicated

    def test_write_reduction_metric(self, scheme):
        for i in range(4):
            scheme.handle_write(wreq(i * 64, LINE, t=i * 500.0))
        assert scheme.write_reduction() == pytest.approx(0.75)


class TestLatencyModel:
    def test_sha1_latency_on_critical_path(self, scheme):
        r = scheme.handle_write(wreq(0, LINE))
        assert r.latency_ns >= scheme.engine.latency_ns

    def test_fingerprint_compute_dominates_breakdown(self, scheme):
        # The paper's Figure 17: ~80% of Dedup_SHA1 write latency is
        # fingerprint computation (when dedup hits dominate).
        for i in range(50):
            scheme.handle_write(wreq(i * 64, LINE, t=i * 400.0))
        fraction = scheme.breakdown.fraction(WritePathStage.FINGERPRINT_COMPUTE)
        assert fraction > 0.5

    def test_duplicate_write_has_no_pcm_data_write(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        before = scheme.controller.data_writes
        scheme.handle_write(wreq(64, LINE, t=500.0))
        assert scheme.controller.data_writes == before

    def test_stages_reported_per_write(self, scheme):
        r = scheme.handle_write(wreq(0, LINE))
        assert WritePathStage.FINGERPRINT_COMPUTE in r.stages
        assert WritePathStage.FINGERPRINT_NVMM_LOOKUP in r.stages
        assert WritePathStage.WRITE_UNIQUE in r.stages


class TestMetadata:
    def test_footprint_grows_with_unique_lines(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        fp1 = scheme.metadata_footprint().nvmm_bytes
        scheme.handle_write(wreq(64, OTHER, t=500.0))
        fp2 = scheme.metadata_footprint().nvmm_bytes
        assert fp2 > fp1

    def test_fingerprint_entry_is_26_bytes(self, scheme):
        # 20 B SHA-1 digest + 5 B packed address + 1 B refcount.
        assert scheme.fingerprint_entry_size == 26
