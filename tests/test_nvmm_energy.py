"""Tests for the energy accounting model."""

import pytest

from repro.nvmm.energy import EnergyAccount, EnergyCategory


class TestEnergyAccount:
    def test_charge_and_get(self):
        acct = EnergyAccount()
        acct.charge(EnergyCategory.PCM_WRITE, 6.75)
        acct.charge(EnergyCategory.PCM_WRITE, 6.75)
        assert acct.get(EnergyCategory.PCM_WRITE) == 13.5

    def test_total(self):
        acct = EnergyAccount()
        acct.charge(EnergyCategory.PCM_READ, 1.49)
        acct.charge(EnergyCategory.ENCRYPTION, 2.1)
        assert acct.total_nj() == pytest.approx(3.59)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyAccount().charge(EnergyCategory.PCM_READ, -1.0)

    def test_breakdown_has_all_categories(self):
        acct = EnergyAccount()
        acct.charge(EnergyCategory.FINGERPRINT, 4.6)
        bd = acct.breakdown()
        assert bd["fingerprint"] == 4.6
        assert bd["pcm_write"] == 0.0
        assert set(bd) == {c.value for c in EnergyCategory}

    def test_merged_with(self):
        a = EnergyAccount()
        a.charge(EnergyCategory.PCM_READ, 1.0)
        b = EnergyAccount()
        b.charge(EnergyCategory.PCM_READ, 2.0)
        b.charge(EnergyCategory.DECRYPTION, 3.0)
        merged = a.merged_with(b)
        assert merged.get(EnergyCategory.PCM_READ) == 3.0
        assert merged.get(EnergyCategory.DECRYPTION) == 3.0
        # Originals untouched.
        assert a.get(EnergyCategory.PCM_READ) == 1.0

    def test_empty_total(self):
        assert EnergyAccount().total_nj() == 0.0
