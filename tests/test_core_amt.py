"""Tests for the AMT (address mapping table)."""

import pytest

from repro.common.config import MetadataCacheConfig, PCMConfig
from repro.common.units import mib
from repro.core.amt import (
    AMT_CACHE_ENTRY_SIZE,
    AMT_HOME_ENTRY_SIZE,
    AddressMappingTable,
)
from repro.nvmm.controller import MemoryController


@pytest.fixture
def controller():
    return MemoryController(PCMConfig(capacity_bytes=mib(4), num_banks=4))


def make_amt(controller, cache_bytes=AMT_CACHE_ENTRY_SIZE * 4):
    return AddressMappingTable(
        MetadataCacheConfig(efit_bytes=1024, amt_bytes=cache_bytes),
        controller)


class TestEntrySizes:
    def test_cached_entry_is_13_bytes(self):
        # 8 B initAddr tag + 4 B Addr_base + 1 B Addr_offsets.
        assert AMT_CACHE_ENTRY_SIZE == 13

    def test_home_entry_is_5_bytes(self):
        # The NVMM home array is indexed by initAddr; only the packed
        # physical address is stored.
        assert AMT_HOME_ENTRY_SIZE == 5


class TestMapping:
    def test_update_lookup(self, controller):
        amt = make_amt(controller)
        amt.update(100, 7, 0.0)
        frame, _, hit = amt.lookup(100, 1.0)
        assert frame == 7
        assert hit

    def test_many_to_one(self, controller):
        amt = make_amt(controller)
        for logical in (1, 2, 3):
            amt.update(logical, 55, 0.0)
        assert all(amt.current_frame(x) == 55 for x in (1, 2, 3))

    def test_physical_address_packing(self, controller):
        amt = make_amt(controller)
        amt.update(9, 0x1FF, 0.0)
        pa = amt.physical_address(9)
        assert pa.base == 1 and pa.offset == 0xFF
        assert amt.physical_address(777) is None

    def test_frame_must_fit_40_bits(self, controller):
        amt = make_amt(controller)
        with pytest.raises(ValueError):
            amt.update(0, 1 << 40, 0.0)

    def test_nvmm_footprint_uses_packed_entries(self, controller):
        amt = make_amt(controller)
        for i in range(10):
            amt.update(i, i, 0.0)
        assert amt.nvmm_bytes() == 10 * AMT_HOME_ENTRY_SIZE


class TestCacheBehaviour:
    def test_evicted_entries_survive_in_home(self, controller):
        amt = make_amt(controller, cache_bytes=AMT_CACHE_ENTRY_SIZE * 2)
        for i in range(8):
            amt.update(i, i + 50, 0.0)
        for i in range(8):
            assert amt.current_frame(i) == i + 50

    def test_miss_charges_nvmm_read(self, controller):
        amt = make_amt(controller, cache_bytes=AMT_CACHE_ENTRY_SIZE * 2)
        for i in range(4):
            amt.update(i, i, 0.0)
        before = controller.metadata_reads
        amt.lookup(0, 100.0)  # evicted from the tiny cache
        assert controller.metadata_reads == before + 1
