"""Tests for the PCM device (contents + wear)."""

import pytest

from repro.common.config import PCMConfig
from repro.common.errors import EnduranceExceededError, InvalidAddressError
from repro.common.units import mib
from repro.nvmm.device import PCMDevice


@pytest.fixture
def device():
    return PCMDevice(PCMConfig(capacity_bytes=mib(1), num_banks=4))


class TestReadWrite:
    def test_fresh_frames_read_zero(self, device):
        assert device.read_line(0) == bytes(64)

    def test_write_then_read(self, device):
        data = bytes(range(64))
        device.write_line(5, data)
        assert device.read_line(5) == data

    def test_overwrite(self, device):
        device.write_line(5, bytes(64))
        data = b"\xAA" * 64
        device.write_line(5, data)
        assert device.read_line(5) == data

    def test_address_bounds(self, device):
        last = device.num_lines - 1
        device.write_line(last, bytes(64))
        with pytest.raises(InvalidAddressError):
            device.read_line(device.num_lines)
        with pytest.raises(InvalidAddressError):
            device.write_line(-1, bytes(64))

    def test_payload_size_check(self, device):
        with pytest.raises(ValueError):
            device.write_line(0, b"small")

    def test_op_counters(self, device):
        device.write_line(0, bytes(64))
        device.read_line(0)
        device.read_line(1)
        assert device.write_ops == 1
        assert device.read_ops == 2


class TestWear:
    def test_write_counts(self, device):
        for _ in range(3):
            device.write_line(7, bytes(64))
        assert device.write_count(7) == 3
        assert device.write_count(8) == 0

    def test_wear_stats(self, device):
        device.write_line(0, bytes(64))
        device.write_line(0, bytes(64))
        device.write_line(1, bytes(64))
        stats = device.wear_stats()
        assert stats.total_writes == 3
        assert stats.frames_touched == 2
        assert stats.max_writes_per_frame == 2
        assert stats.mean_writes_per_touched_frame == 1.5
        assert stats.wear_imbalance == pytest.approx(2 / 1.5)

    def test_empty_wear_stats(self, device):
        stats = device.wear_stats()
        assert stats.total_writes == 0
        assert stats.wear_imbalance == 0.0

    def test_endurance_enforced_when_enabled(self):
        cfg = PCMConfig(capacity_bytes=mib(1), num_banks=4,
                        endurance_writes=2, fail_on_endurance=True)
        device = PCMDevice(cfg)
        device.write_line(0, bytes(64))
        device.write_line(0, bytes(64))
        with pytest.raises(EnduranceExceededError):
            device.write_line(0, bytes(64))

    def test_endurance_recorded_but_not_enforced_by_default(self):
        cfg = PCMConfig(capacity_bytes=mib(1), num_banks=4, endurance_writes=1)
        device = PCMDevice(cfg)
        device.write_line(0, bytes(64))
        device.write_line(0, bytes(64))  # no raise
        assert device.write_count(0) == 2

    def test_occupied_frames(self, device):
        assert device.occupied_frames() == 0
        device.write_line(3, bytes(64))
        device.write_line(9, bytes(64))
        assert device.occupied_frames() == 2
