"""Stage conservation across every registered scheme.

The StageTimeline invariant — exposed per-stage latencies sum to the
request's critical path — is what makes the Figure 17 latency profile
trustworthy.  These tests drive each registered scheme's write and read
handlers directly and check the invariant on every request, plus the
aggregate consistency between the per-request timelines and the scheme's
running breakdowns.
"""

import pytest

from repro.registry import make_scheme, registered_scheme_names
from repro.workloads.generator import TraceGenerator


def _drive(scheme, trace):
    """Replay a trace through the scheme; returns (write, read) results."""
    writes, reads = [], []
    for request in trace:
        if request.is_write:
            writes.append((request, scheme.handle_write(request)))
        else:
            reads.append((request, scheme.handle_read(request)))
    return writes, reads


@pytest.fixture(params=registered_scheme_names())
def driven_scheme(request, config):
    scheme = make_scheme(request.param, config)
    # gcc mixes duplicate-rich and unique lines plus reads, exercising the
    # dup/unique/collision branches of every scheme.
    trace = TraceGenerator("gcc", seed=11).generate_list(1_200)
    writes, reads = _drive(scheme, trace)
    assert writes and reads, "trace must exercise both handlers"
    return scheme, writes, reads


class TestPerRequestConservation:
    def test_write_timelines_sealed_and_conserved(self, driven_scheme):
        _, writes, _ = driven_scheme
        for request, result in writes:
            assert result.timeline is not None
            assert result.timeline.sealed
            assert result.timeline.start_ns == request.issue_time_ns
            assert result.latency_ns == pytest.approx(
                result.timeline.critical_path_ns)
            assert sum(result.stages.values()) == pytest.approx(
                result.latency_ns)

    def test_read_timelines_sealed_and_conserved(self, driven_scheme):
        _, _, reads = driven_scheme
        for request, result in reads:
            assert result.timeline is not None
            assert result.timeline.sealed
            assert result.timeline.start_ns == request.issue_time_ns
            assert sum(result.timeline.exposures.values()) == pytest.approx(
                result.latency_ns)

    def test_completion_matches_issue_plus_latency(self, driven_scheme):
        _, writes, reads = driven_scheme
        for request, result in writes + reads:
            assert result.completion_ns == pytest.approx(
                request.issue_time_ns + result.latency_ns)


class TestAggregateConservation:
    def test_write_breakdown_totals_write_latency(self, driven_scheme):
        scheme, writes, _ = driven_scheme
        total_latency = sum(result.latency_ns for _, result in writes)
        assert scheme.breakdown.total() == pytest.approx(total_latency)

    def test_read_breakdown_totals_read_latency(self, driven_scheme):
        scheme, _, reads = driven_scheme
        total_latency = sum(result.latency_ns for _, result in reads)
        assert scheme.read_breakdown.total() == pytest.approx(total_latency)

    def test_breakdowns_do_not_mix_paths(self, driven_scheme):
        # Reads must never inflate the write-path profile Figure 17 plots.
        from repro.common.types import WritePathStage

        scheme, _, _ = driven_scheme
        assert WritePathStage.READ_FILL not in scheme.breakdown.by_stage
        assert WritePathStage.DECRYPTION not in scheme.breakdown.by_stage
