"""Tests for the lease-based work-queue execution path.

Covers the distributed contract end to end: queue+store parity with the
serial runner (byte-identical grids), crash recovery through lease
expiry and reclamation, worker-loop drain/resume, the job-spec wire
codec, and the CLI surface (unknown backend names, ``repro worker``).
"""

import json
import os
import pathlib

import pytest

from repro.common import SweepError, UnknownBackendError, small_test_config
from repro.sim.export import grid_to_dict
from repro.sim.runner import ExperimentConfig, run_grid
from repro.sweep import (
    Scheduler,
    WorkQueueBackend,
    execute_job,
    execution_backend_names,
    job_meta,
    jobs_from_experiment,
    make_execution_backend,
    open_store,
    run_sweep,
    spec_from_payload,
    spec_to_payload,
    worker_loop,
)

CRASH_SENTINEL_ENV = "REPRO_TEST_QUEUE_CRASH_SENTINEL"


def small_experiment(apps=("gcc", "lbm"), schemes=("Baseline", "ESD"),
                     requests=600):
    return ExperimentConfig(apps=list(apps), schemes=list(schemes),
                            requests_per_app=requests,
                            system=small_test_config(), seed=7)


def crash_once_worker(spec, trace_path):
    """Hard-kills its worker process the first time any job runs.

    ``os._exit`` skips all cleanup — no lease release, no heartbeat stop —
    which is exactly what a SIGKILL looks like to the store.
    """
    sentinel = pathlib.Path(os.environ[CRASH_SENTINEL_ENV])
    if not sentinel.exists():
        sentinel.touch()
        os._exit(1)
    return execute_job(spec, trace_path)


def always_raising_worker(spec, trace_path):
    raise ValueError("injected failure")


def grid_json(grid):
    return json.dumps(grid_to_dict(grid), sort_keys=True)


class TestSpecWireCodec:
    def test_round_trip_preserves_digest(self):
        spec = jobs_from_experiment(small_experiment())[0]
        payload = spec_to_payload(spec)
        rebuilt = spec_from_payload(json.loads(json.dumps(payload)))
        assert rebuilt == spec
        assert rebuilt.digest() == spec.digest()

    def test_tampered_payload_rejected(self):
        spec = jobs_from_experiment(small_experiment())[0]
        payload = spec_to_payload(spec)
        payload["seed"] = payload["seed"] + 1
        with pytest.raises(ValueError, match="digest mismatch"):
            spec_from_payload(payload)

    def test_wrong_schema_rejected(self):
        spec = jobs_from_experiment(small_experiment())[0]
        payload = spec_to_payload(spec)
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            spec_from_payload(payload)


class TestQueueParity:
    @pytest.mark.parametrize("store_name", ["store.sqlite", "storedir"])
    def test_queue_grid_byte_identical_to_serial(self, tmp_path,
                                                 store_name):
        config = small_experiment()
        serial = run_grid(config)
        backend = WorkQueueBackend(lease_s=10.0, poll_s=0.05)
        queued = run_sweep(config, jobs=2,
                           store=str(tmp_path / store_name),
                           backend=backend)
        assert grid_json(serial) == grid_json(queued)
        assert list(serial) == list(queued)

    def test_queue_resumes_from_cached_rows(self, tmp_path):
        config = small_experiment(apps=["gcc"], requests=500)
        store_spec = str(tmp_path / "store.sqlite")
        run_sweep(config, jobs=2, store=store_spec,
                  backend=WorkQueueBackend(lease_s=10.0, poll_s=0.05))
        again = run_sweep(config, jobs=2, store=store_spec,
                          backend=WorkQueueBackend(lease_s=10.0,
                                                   poll_s=0.05))
        store = open_store(store_spec)
        manifest = store.read_manifest()
        store.close()
        assert manifest["cached"] == len(again)
        assert manifest["simulated"] == 0


class TestCrashRecovery:
    def test_killed_worker_lease_reclaimed_and_rerun_identical(
            self, tmp_path, monkeypatch):
        """A worker dying mid-job (no release, no heartbeat) costs only
        time: the lease expires, another worker reclaims the job, and the
        final grid is byte-identical to a serial run."""
        monkeypatch.setenv(CRASH_SENTINEL_ENV,
                           str(tmp_path / "crashed.sentinel"))
        config = small_experiment()
        serial = run_grid(config)
        backend = WorkQueueBackend(lease_s=1.0, poll_s=0.05)
        store = open_store(str(tmp_path / "store.sqlite"))
        scheduler = Scheduler(store, jobs=2, backend=backend,
                              worker=crash_once_worker)
        queued = scheduler.run(jobs_from_experiment(config))
        store.close()
        assert grid_json(serial) == grid_json(queued)
        store = open_store(str(tmp_path / "store.sqlite"))
        reclaims = store.reclaim_count()
        manifest = store.read_manifest()
        store.close()
        assert reclaims >= 1
        flat = manifest["obs"]["flat"]
        assert flat["sweep_lease_reclaims_total"] == reclaims
        assert flat["sweep_worker_respawns_total"] >= 1

    def test_poison_job_gets_failure_tombstone(self, tmp_path):
        """A job that fails on every attempt burns its retry budget and is
        recorded as failed instead of looping forever."""
        config = small_experiment(apps=["gcc"], schemes=["Baseline"],
                                  requests=400)
        store = open_store(str(tmp_path / "store.sqlite"))
        spec = jobs_from_experiment(config)[0]
        store.enqueue(spec.digest(), {"spec": spec_to_payload(spec)})
        completed = worker_loop(store.spec, retries=1, poll_s=0.01,
                                worker=always_raising_worker)
        assert completed == 0
        failure = store.get_failure(spec.digest())
        store.close()
        assert failure is not None
        assert failure["attempts"] == 2  # retries + 1
        assert "injected failure" in failure["error"]


class TestWorkerLoop:
    def test_standalone_worker_serves_published_queue(self, tmp_path):
        """A bare worker_loop pointed at a store with published jobs
        completes them through the same put() path as the scheduler."""
        config = small_experiment(apps=["gcc"], requests=500)
        store = open_store(str(tmp_path / "store"))
        specs = jobs_from_experiment(config)
        for spec in specs:
            store.enqueue(spec.digest(), {"spec": spec_to_payload(spec)})
        completed = worker_loop(store.spec, lease_s=10.0, poll_s=0.01,
                                worker_id="w-test")
        assert completed == len(specs)
        for spec in specs:
            assert store.get(spec.digest()) is not None
        workers = {row["worker"] for row in store.completions()}
        assert workers == {"w-test"}
        # Queue fully terminal: a second worker finds nothing to do.
        assert worker_loop(store.spec, poll_s=0.01) == 0
        store.close()

    def test_worker_results_match_pool_results(self, tmp_path):
        """Rows written by a queue worker are byte-identical to rows the
        pool scheduler writes for the same spec (shared put() path)."""
        config = small_experiment(apps=["gcc"], schemes=["ESD"],
                                  requests=500)
        spec = jobs_from_experiment(config)[0]

        pool_store = open_store(str(tmp_path / "pool"))
        run_sweep(config, jobs=1, store=pool_store)

        queue_store = open_store(str(tmp_path / "queue"))
        queue_store.enqueue(spec.digest(),
                            {"spec": spec_to_payload(spec)})
        worker_loop(queue_store.spec, poll_s=0.01)

        digest = spec.digest()
        assert queue_store.backend.read_result(digest) == \
            pool_store.backend.read_result(digest)


class TestManifest:
    def test_manifest_records_backend_storage_and_workers(self, tmp_path):
        config = small_experiment(apps=["gcc"], requests=500)
        store_spec = str(tmp_path / "store.sqlite")
        run_sweep(config, jobs=2, store=store_spec,
                  backend=WorkQueueBackend(lease_s=10.0, poll_s=0.05))
        store = open_store(store_spec)
        manifest = store.read_manifest()
        store.close()
        assert manifest["backend"] == "queue"
        assert manifest["storage"] == "sqlite"
        simulated = [row for row in manifest["jobs"]
                     if row["status"] == "simulated"]
        assert simulated and all(row.get("worker") for row in simulated)
        flat = manifest["obs"]["flat"]
        completed = [v for k, v in flat.items()
                     if k.startswith("sweep_jobs_completed_total")]
        assert sum(completed) == len(simulated)

    def test_pool_manifest_unchanged_shape(self, tmp_path):
        config = small_experiment(apps=["gcc"], requests=500)
        store = open_store(str(tmp_path / "store"))
        run_sweep(config, jobs=1, store=store)
        manifest = store.read_manifest()
        assert manifest["backend"] == "pool"
        assert manifest["storage"] == "dir"
        assert "obs" not in manifest  # the pool keeps no fleet metrics
        assert all("worker" not in row for row in manifest["jobs"])


class TestBackendRegistry:
    def test_names(self):
        assert execution_backend_names() == ["pool", "queue"]

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            make_execution_backend("bogus")
        assert "pool" in str(excinfo.value)
        assert "queue" in str(excinfo.value)

    def test_run_sweep_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(SweepError):
            run_sweep(small_experiment(), jobs=1,
                      store=str(tmp_path / "s"), backend="bogus")


class TestCli:
    def test_sweep_unknown_backend_exits_with_names(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--apps", "gcc", "--schemes", "Baseline",
                  "--requests", "300", "--backend", "bogus",
                  "--store", str(tmp_path / "s")])
        assert "pool" in str(excinfo.value)
        assert "queue" in str(excinfo.value)

    def test_sweep_unknown_storage_exits_with_names(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--apps", "gcc", "--schemes", "Baseline",
                  "--requests", "300", "--storage", "bogus",
                  "--store", str(tmp_path / "s")])
        assert "dir" in str(excinfo.value)
        assert "sqlite" in str(excinfo.value)

    def test_queue_backend_requires_store(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--store"):
            main(["sweep", "--apps", "gcc", "--schemes", "Baseline",
                  "--requests", "300", "--backend", "queue"])

    def test_worker_command_serves_queue(self, tmp_path, capsys):
        from repro.cli import main
        config = small_experiment(apps=["gcc"], schemes=["Baseline"],
                                  requests=400)
        store = open_store(str(tmp_path / "store.sqlite"))
        spec = jobs_from_experiment(config)[0]
        store.enqueue(spec.digest(), {"spec": spec_to_payload(spec)})
        rc = main(["worker", "--store", store.spec, "--quiet",
                   "--poll", "0.01"])
        assert rc == 0
        assert "1 job(s) completed" in capsys.readouterr().out
        assert store.get(spec.digest()) is not None
        store.close()
