"""Tests for repro.common.stats."""

import math

import pytest

from repro.common.stats import (
    Counter,
    LatencyRecorder,
    RunningMean,
    geometric_mean,
    harmonic_mean,
    normalize_to,
)


class TestCounter:
    def test_increment(self):
        c = Counter()
        c.incr("a")
        c.incr("a", 4)
        assert c.get("a") == 5

    def test_missing_is_zero(self):
        assert Counter().get("nothing") == 0

    def test_ratio(self):
        c = Counter()
        c.incr("hits", 3)
        c.incr("total", 4)
        assert c.ratio("hits", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert Counter().ratio("a", "b") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().incr("a", -1)


class TestRunningMean:
    def test_mean_and_stddev(self):
        rm = RunningMean()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            rm.add(x)
        assert rm.mean == pytest.approx(5.0)
        assert rm.stddev == pytest.approx(math.sqrt(32 / 7))

    def test_empty(self):
        rm = RunningMean()
        assert rm.mean == 0.0
        assert rm.variance == 0.0


class TestLatencyRecorder:
    def test_basic_stats(self):
        rec = LatencyRecorder()
        rec.extend([10.0, 20.0, 30.0])
        assert rec.count == 3
        assert rec.mean_ns == pytest.approx(20.0)
        assert rec.min_ns == 10.0
        assert rec.max_ns == 30.0
        assert rec.total_ns == 60.0

    def test_percentiles(self):
        rec = LatencyRecorder()
        rec.extend(float(i) for i in range(1, 101))
        assert rec.percentile(50) == pytest.approx(50.5)
        assert rec.percentile(99) > 98

    def test_percentile_range_check(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_empty_recorder(self):
        rec = LatencyRecorder()
        assert rec.mean_ns == 0.0
        assert rec.cdf() == ([], [])

    def test_empty_percentile_is_nan(self):
        # Regression: an empty recorder used to report percentile 0.0,
        # indistinguishable from a genuine zero-latency tail.  NaN is the
        # unambiguous "no data" sentinel; exporters map it to None/blank.
        rec = LatencyRecorder()
        for p in (0, 50, 90, 99, 99.9, 100):
            assert math.isnan(rec.percentile(p))

    def test_empty_tail_summary_is_all_nan(self):
        summary = LatencyRecorder().tail_summary()
        assert set(summary) == {"p50", "p90", "p99", "p999"}
        assert all(math.isnan(v) for v in summary.values())

    def test_single_sample_percentile_is_finite(self):
        rec = LatencyRecorder()
        rec.add(42.0)
        assert rec.percentile(50) == 42.0
        assert rec.percentile(99.9) == 42.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyRecorder().add(-1.0)

    def test_cdf_monotone(self):
        rec = LatencyRecorder()
        rec.extend(float(i % 37) for i in range(500))
        xs, ys = rec.cdf(points=20)
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_reservoir_keeps_exact_aggregates(self):
        rec = LatencyRecorder(max_samples=100)
        rec.extend(float(i) for i in range(10_000))
        assert rec.count == 10_000
        assert rec.mean_ns == pytest.approx(4999.5)
        assert rec.max_ns == 9999.0
        assert len(rec.samples()) == 100

    def test_tail_summary_keys(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0, 3.0])
        assert set(rec.tail_summary()) == {"p50", "p90", "p99", "p999"}


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])


class TestNormalizeTo:
    def test_normalizes(self):
        out = normalize_to({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "zzz")

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            normalize_to({"a": 0.0, "b": 1.0}, "a")
