"""Tests for the SEC-DED Hamming(72,64) word codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import UncorrectableError
from repro.ecc import hamming
from repro.ecc.hamming import (
    CODEWORD_LEN,
    ECC_BITS,
    NUM_CHECK_BITS,
    decode_word,
    encode_word,
    syndrome,
)

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)
BITS = st.integers(min_value=0, max_value=63)


class TestLayout:
    def test_check_bit_count(self):
        assert NUM_CHECK_BITS == 7
        assert CODEWORD_LEN == 71
        assert ECC_BITS == 8

    def test_data_positions_skip_powers_of_two(self):
        positions = hamming.data_positions()
        assert len(positions) == 64
        for p in positions:
            assert p & (p - 1) != 0  # never a power of two

    def test_masks_cover_every_data_bit(self):
        combined = 0
        for mask in hamming.check_masks():
            combined |= mask
        assert combined == (1 << 64) - 1


class TestEncode:
    def test_range_check(self):
        with pytest.raises(ValueError):
            encode_word(-1)
        with pytest.raises(ValueError):
            encode_word(1 << 64)

    def test_zero_word_encodes_to_zero(self):
        # The code is linear: ecc(0) == 0.
        assert encode_word(0) == 0

    def test_linearity(self):
        # ecc(a ^ b) == ecc(a) ^ ecc(b) for a GF(2)-linear code.
        a, b = 0x0123456789ABCDEF, 0xFEDCBA9876543210
        assert encode_word(a ^ b) == encode_word(a) ^ encode_word(b)

    def test_fast_encoder_matches_reference(self):
        for w in (0, 1, (1 << 64) - 1, 0xDEADBEEFCAFEBABE, 0x8000000000000001):
            assert encode_word(w) == hamming._encode_word_masks(w)


class TestSyndrome:
    def test_clean_word_zero_syndrome(self):
        w = 0xA5A5A5A55A5A5A5A
        pos, parity = syndrome(w, encode_word(w))
        assert pos == 0
        assert parity == 0

    def test_ecc_range_check(self):
        with pytest.raises(ValueError):
            syndrome(0, 256)


class TestDecode:
    def test_clean_decode(self):
        w = 0x123456789ABCDEF0
        r = decode_word(w, encode_word(w))
        assert r.word == w
        assert not r.corrected

    def test_corrects_every_single_data_bit(self):
        w = 0xDEADBEEFCAFEBABE
        ecc = encode_word(w)
        for bit in range(64):
            r = decode_word(w ^ (1 << bit), ecc)
            assert r.word == w
            assert r.corrected

    def test_corrects_flipped_check_bit(self):
        w = 0x42
        ecc = encode_word(w)
        for bit in range(ECC_BITS):
            r = decode_word(w, ecc ^ (1 << bit))
            assert r.word == w  # data untouched
            assert r.corrected

    def test_detects_double_data_bit_error(self):
        w = 0xFFFFFFFF00000000
        ecc = encode_word(w)
        for b1, b2 in [(0, 1), (5, 40), (62, 63)]:
            with pytest.raises(UncorrectableError):
                decode_word(w ^ (1 << b1) ^ (1 << b2), ecc)

    def test_detects_data_plus_check_error(self):
        w = 0x1122334455667788
        ecc = encode_word(w)
        with pytest.raises(UncorrectableError):
            decode_word(w ^ 1, ecc ^ 2)


class TestDecodeProperties:
    @given(WORDS)
    @settings(max_examples=200)
    def test_roundtrip_clean(self, word):
        r = decode_word(word, encode_word(word))
        assert r.word == word and not r.corrected

    @given(WORDS, BITS)
    @settings(max_examples=200)
    def test_single_bit_always_corrected(self, word, bit):
        r = decode_word(word ^ (1 << bit), encode_word(word))
        assert r.word == word
        assert r.corrected

    @given(WORDS, BITS, BITS)
    @settings(max_examples=200)
    def test_double_bit_always_detected(self, word, b1, b2):
        if b1 == b2:
            return
        corrupted = word ^ (1 << b1) ^ (1 << b2)
        with pytest.raises(UncorrectableError):
            decode_word(corrupted, encode_word(word))

    @given(WORDS, WORDS)
    @settings(max_examples=200)
    def test_distinct_ecc_implies_distinct_word(self, a, b):
        # Soundness of ECC filtering: ecc differs => data differs.
        if encode_word(a) != encode_word(b):
            assert a != b
