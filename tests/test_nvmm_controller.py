"""Tests for the NVMM memory controller (timing, banking, energy)."""

import pytest

from repro.common.config import PCMConfig
from repro.common.units import mib
from repro.nvmm.controller import MemoryController
from repro.nvmm.energy import EnergyCategory


@pytest.fixture
def controller():
    return MemoryController(PCMConfig(capacity_bytes=mib(4), num_banks=4))


class TestDataPath:
    def test_write_then_read_content(self, controller):
        data = bytes(range(64))
        controller.write(10, data, 0.0)
        out, _ = controller.read(10, 200.0)
        assert out == data

    def test_write_timing(self, controller):
        r = controller.write(0, bytes(64), 0.0)
        assert r.completion_ns == 150.0
        assert r.latency_ns == 150.0

    def test_read_miss_timing(self, controller):
        _, r = controller.read(0, 0.0)
        assert r.latency_ns == 75.0

    def test_row_hit_read_is_fast(self, controller):
        controller.read(0, 0.0)           # opens bank 0's row 0
        _, r = controller.read(4, 100.0)  # bank 0 again, same 64-line row
        assert r.latency_ns == controller.config.row_hit_read_latency_ns

    def test_row_conflict_read_is_slow(self, controller):
        controller.read(0, 0.0)
        # Same bank (line % 4 == 0), different row.
        far = controller.config.row_size_lines * 4
        _, r = controller.read(far, 100.0)
        assert r.latency_ns == 75.0

    def test_bank_interleaving(self, controller):
        assert controller.bank_for_line(0).index == 0
        assert controller.bank_for_line(1).index == 1
        assert controller.bank_for_line(5).index == 1

    def test_same_bank_accesses_serialize(self, controller):
        controller.write(0, bytes(64), 0.0)
        r = controller.write(4, bytes(64), 0.0)  # same bank 0
        assert r.service.start_ns == 150.0

    def test_different_banks_parallel(self, controller):
        controller.write(0, bytes(64), 0.0)
        r = controller.write(1, bytes(64), 0.0)
        assert r.service.start_ns == 0.0


class TestEnergy:
    def test_write_energy(self, controller):
        controller.write(0, bytes(64), 0.0)
        assert controller.energy.get(EnergyCategory.PCM_WRITE) == 6.75

    def test_read_energy_row_miss_vs_hit(self, controller):
        controller.read(0, 0.0)
        miss_energy = controller.energy.get(EnergyCategory.PCM_READ)
        assert miss_energy == 1.49
        controller.read(4, 100.0)  # row hit (bank 0, same row)
        total = controller.energy.get(EnergyCategory.PCM_READ)
        assert total == pytest.approx(
            1.49 + controller.config.row_hit_read_energy_nj)


class TestMetadataPath:
    def test_metadata_read_charged(self, controller):
        r = controller.metadata_read(12345, 0.0)
        assert r.latency_ns == 75.0
        assert controller.metadata_reads == 1

    def test_metadata_row_hit(self, controller):
        controller.metadata_read(12345, 0.0)
        r = controller.metadata_read(12345, 100.0)
        assert r.latency_ns == controller.config.row_hit_read_latency_ns

    def test_metadata_write_charged(self, controller):
        controller.metadata_write(7, 0.0)
        assert controller.metadata_writes == 1
        assert controller.energy.get(EnergyCategory.PCM_WRITE) == 6.75

    def test_total_pcm_writes(self, controller):
        controller.write(0, bytes(64), 0.0)
        controller.metadata_write(1, 0.0)
        assert controller.total_pcm_writes == 2


class TestReporting:
    def test_counters(self, controller):
        controller.write(0, bytes(64), 0.0)
        controller.read(0, 200.0)
        controller.metadata_read(9, 0.0)
        assert controller.data_writes == 1
        assert controller.data_reads == 1
        assert controller.metadata_reads == 1

    def test_bank_utilization(self, controller):
        controller.write(0, bytes(64), 0.0)
        util = controller.bank_utilization(horizon_ns=300.0)
        assert util[0] == pytest.approx(0.5)
        assert all(u == 0.0 for u in util[1:])

    def test_bank_utilization_rejects_bad_horizon(self, controller):
        with pytest.raises(ValueError):
            controller.bank_utilization(0.0)

    def test_shared_config_enforced(self):
        cfg_a = PCMConfig(capacity_bytes=mib(4), num_banks=4)
        cfg_b = PCMConfig(capacity_bytes=mib(4), num_banks=4)
        from repro.nvmm.device import PCMDevice
        with pytest.raises(ValueError):
            MemoryController(cfg_a, PCMDevice(cfg_b))
