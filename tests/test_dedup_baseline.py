"""Tests for the Baseline scheme (encryption, no dedup)."""

import pytest

from repro.common.types import AccessType, MemoryRequest, WritePathStage
from repro.dedup.baseline import BaselineScheme


def wreq(addr, data, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         issue_time_ns=t)


def rreq(addr, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.READ, issue_time_ns=t)


LINE = bytes(range(64))


@pytest.fixture
def scheme(config):
    return BaselineScheme(config)


class TestWrites:
    def test_write_never_dedups(self, scheme):
        r1 = scheme.handle_write(wreq(0, LINE))
        r2 = scheme.handle_write(wreq(64, LINE))  # identical content
        assert not r1.deduplicated and not r2.deduplicated
        assert scheme.controller.data_writes == 2
        assert scheme.write_reduction() == 0.0

    def test_write_latency_includes_encrypt_and_pcm(self, scheme):
        r = scheme.handle_write(wreq(0, LINE))
        expected = (scheme.crypto.encrypt_latency_ns
                    + scheme.config.pcm.write_latency_ns)
        assert r.latency_ns == pytest.approx(expected)

    def test_rewrites_go_in_place(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(0, b"\xAA" * 64, t=1000.0))
        # One frame allocated, written twice.
        assert scheme.allocator.allocated_count == 1
        assert scheme.controller.device.write_count(0) == 2

    def test_stage_breakdown(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        fractions = scheme.breakdown.as_fractions()
        assert WritePathStage.ENCRYPTION in fractions
        assert WritePathStage.WRITE_UNIQUE in fractions
        assert WritePathStage.FINGERPRINT_COMPUTE not in fractions


class TestReads:
    def test_read_returns_written_data(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        result = scheme.handle_read(rreq(0, t=1000.0))
        assert result.data == LINE

    def test_ciphertext_stored_not_plaintext(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        stored = scheme.controller.device.read_line(0)
        assert stored != LINE  # encrypted at rest

    def test_unwritten_read_returns_zeros(self, scheme):
        result = scheme.handle_read(rreq(640))
        assert result.data == bytes(64)
        assert result.latency_ns >= scheme.config.pcm.row_hit_read_latency_ns

    def test_read_after_overwrite(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        new = b"\x55" * 64
        scheme.handle_write(wreq(0, new, t=500.0))
        assert scheme.handle_read(rreq(0, t=1000.0)).data == new


class TestAccounting:
    def test_no_metadata_footprint(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        fp = scheme.metadata_footprint()
        assert fp.onchip_bytes == 0
        assert fp.nvmm_bytes == 0
        assert fp.total_bytes == 0

    def test_energy_includes_crypto_and_pcm(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_read(rreq(0, t=500.0))
        energy = scheme.total_energy()
        from repro.nvmm.energy import EnergyCategory
        assert energy.get(EnergyCategory.PCM_WRITE) > 0
        assert energy.get(EnergyCategory.ENCRYPTION) > 0
        assert energy.get(EnergyCategory.DECRYPTION) > 0

    def test_counters(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_read(rreq(0, t=100.0))
        assert scheme.writes_handled == 1
        assert scheme.counters.get("reads") == 1
        assert scheme.duplicates_eliminated == 0
