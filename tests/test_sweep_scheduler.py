"""Tests for the sweep scheduler: parity, resume, retry, progress."""

import io
import json
import os
import pathlib
import time

import pytest

from repro.common import SweepError, small_test_config
from repro.sim.export import grid_to_dict
from repro.sim.runner import ExperimentConfig, run_grid
from repro.sweep import (
    ProgressReporter,
    ResultStore,
    Scheduler,
    execute_job,
    jobs_from_experiment,
    run_sweep,
)

#: Sentinel path used by the crash-once worker (set per test).
CRASH_SENTINEL_ENV = "REPRO_TEST_CRASH_SENTINEL"
FAIL_COUNT_ENV = "REPRO_TEST_FAIL_DIR"


def small_experiment(apps=("gcc", "lbm"), schemes=("Baseline", "ESD"),
                     requests=900):
    return ExperimentConfig(apps=list(apps), schemes=list(schemes),
                            requests_per_app=requests,
                            system=small_test_config(), seed=7)


def crash_once_worker(spec, trace_path):
    """Hard-kills its worker process the first time any job runs."""
    sentinel = pathlib.Path(os.environ[CRASH_SENTINEL_ENV])
    if not sentinel.exists():
        sentinel.touch()
        os._exit(1)
    return execute_job(spec, trace_path)


def always_raising_worker(spec, trace_path):
    raise ValueError("injected failure")


def sleeping_worker(spec, trace_path):
    time.sleep(30.0)
    return execute_job(spec, trace_path)


def counting_worker(spec, trace_path):
    """Drops a marker file per simulated cell, then runs normally."""
    marker_dir = pathlib.Path(os.environ[FAIL_COUNT_ENV])
    (marker_dir / f"{spec.app}-{spec.scheme}").touch()
    return execute_job(spec, trace_path)


def keyboard_interrupt_worker(spec, trace_path):
    """Simulates Ctrl-C arriving while a job is in flight."""
    raise KeyboardInterrupt


class TestParity:
    def test_parallel_grid_byte_identical_to_serial(self, tmp_path):
        config = small_experiment()
        serial = run_grid(config)
        parallel = run_grid(config, jobs=4, store=tmp_path / "store")
        a = json.dumps(grid_to_dict(serial), sort_keys=True)
        b = json.dumps(grid_to_dict(parallel), sort_keys=True)
        assert a == b
        assert list(serial) == list(parallel)

    def test_cached_grid_byte_identical_to_serial(self, tmp_path):
        config = small_experiment(apps=["gcc"], requests=700)
        serial = run_grid(config)
        run_grid(config, jobs=2, store=tmp_path / "store")
        cached = run_grid(config, jobs=2, store=tmp_path / "store")
        assert json.dumps(grid_to_dict(serial), sort_keys=True) \
            == json.dumps(grid_to_dict(cached), sort_keys=True)

    def test_in_process_path_matches_pool_path(self, tmp_path):
        config = small_experiment(apps=["gcc"], requests=700)
        one = run_sweep(config, jobs=1, store=tmp_path / "a")
        many = run_sweep(config, jobs=3, store=tmp_path / "b")
        assert json.dumps(grid_to_dict(one), sort_keys=True) \
            == json.dumps(grid_to_dict(many), sort_keys=True)


class TestCaching:
    def test_second_run_simulates_nothing(self, tmp_path):
        config = small_experiment(requests=600)
        store = tmp_path / "store"
        reporter1 = ProgressReporter(4, enabled=False)
        run_sweep(config, jobs=1, store=store, reporter=reporter1)
        assert reporter1.simulated == 4 and reporter1.cached == 0

        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        os.environ[FAIL_COUNT_ENV] = str(marker_dir)
        try:
            reporter2 = ProgressReporter(4, enabled=False)
            specs = jobs_from_experiment(config)
            scheduler = Scheduler(ResultStore(store), jobs=1,
                                  reporter=reporter2, worker=counting_worker)
            scheduler.run(specs)
        finally:
            del os.environ[FAIL_COUNT_ENV]
        assert reporter2.cached == 4 and reporter2.simulated == 0
        assert list(marker_dir.iterdir()) == []  # zero simulations re-run

    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        """Completing half the grid then rerunning simulates only the rest."""
        config = small_experiment(requests=600)
        store = ResultStore(tmp_path / "store")
        specs = jobs_from_experiment(config)
        # "Interrupt": only the first two cells finished before the kill.
        Scheduler(store, jobs=1).run(specs[:2])

        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        os.environ[FAIL_COUNT_ENV] = str(marker_dir)
        try:
            reporter = ProgressReporter(4, enabled=False)
            Scheduler(store, jobs=1, reporter=reporter,
                      worker=counting_worker).run(specs)
        finally:
            del os.environ[FAIL_COUNT_ENV]
        assert reporter.cached == 2 and reporter.simulated == 2
        simulated = {p.name for p in marker_dir.iterdir()}
        assert simulated == {f"{s.app}-{s.scheme}" for s in specs[2:]}

    def test_config_change_invalidates_cache(self, tmp_path):
        store = tmp_path / "store"
        run_sweep(small_experiment(apps=["gcc"], requests=600),
                  jobs=1, store=store)
        reporter = ProgressReporter(2, enabled=False)
        run_sweep(small_experiment(apps=["gcc"], requests=601),
                  jobs=1, store=store, reporter=reporter)
        assert reporter.simulated == 2 and reporter.cached == 0


class TestFailureHandling:
    def test_worker_crash_is_retried_and_recovers(self, tmp_path):
        config = small_experiment(apps=["gcc"], schemes=["Baseline"],
                                  requests=600)
        os.environ[CRASH_SENTINEL_ENV] = str(tmp_path / "crashed")
        try:
            reporter = ProgressReporter(1, enabled=False)
            scheduler = Scheduler(ResultStore(tmp_path / "store"), jobs=2,
                                  retries=2, reporter=reporter,
                                  worker=crash_once_worker)
            grid = scheduler.run(jobs_from_experiment(config))
        finally:
            del os.environ[CRASH_SENTINEL_ENV]
        assert ("gcc", "Baseline") in grid
        assert reporter.retries >= 1
        assert reporter.simulated == 1

    def test_persistent_failure_raises_sweep_error(self, tmp_path):
        config = small_experiment(apps=["gcc"], schemes=["Baseline"],
                                  requests=600)
        reporter = ProgressReporter(1, enabled=False)
        scheduler = Scheduler(ResultStore(tmp_path / "store"), jobs=1,
                              retries=1, reporter=reporter,
                              worker=always_raising_worker)
        with pytest.raises(SweepError, match="gcc/Baseline"):
            scheduler.run(jobs_from_experiment(config))
        assert reporter.failed == 1
        assert reporter.retries == 1  # one retry, then terminal failure

    def test_job_timeout_fails_the_job(self, tmp_path):
        config = small_experiment(apps=["gcc"], schemes=["Baseline"],
                                  requests=600)
        scheduler = Scheduler(ResultStore(tmp_path / "store"), jobs=2,
                              retries=0, job_timeout_s=0.3,
                              worker=sleeping_worker)
        started = time.monotonic()
        with pytest.raises(SweepError):
            scheduler.run(jobs_from_experiment(config))
        assert time.monotonic() - started < 20.0

    def test_scheduler_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            Scheduler(jobs=0)
        with pytest.raises(ValueError):
            Scheduler(job_timeout_s=0)
        with pytest.raises(ValueError):
            Scheduler(retries=-1)


class TestKeyboardInterrupt:
    def test_serial_interrupt_flushes_and_marks_manifest(self, tmp_path):
        """Ctrl-C mid-sweep keeps finished rows and marks the manifest."""
        config = small_experiment(requests=600)  # 4 cells
        store = ResultStore(tmp_path / "store")
        specs = jobs_from_experiment(config)

        calls = []

        def interrupt_on_second(spec, trace_path):
            calls.append(spec.key)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return execute_job(spec, trace_path)

        scheduler = Scheduler(store, jobs=1, worker=interrupt_on_second)
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(specs)

        manifest = store.read_manifest()
        assert manifest["interrupted"] is True
        # The completed first cell survived the interrupt.
        assert len(list(store.iter_digests())) == 1

    def test_interrupted_sweep_resumes_from_flushed_rows(self, tmp_path):
        config = small_experiment(requests=600)
        store = ResultStore(tmp_path / "store")
        specs = jobs_from_experiment(config)

        calls = []

        def interrupt_on_second(spec, trace_path):
            calls.append(spec.key)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return execute_job(spec, trace_path)

        with pytest.raises(KeyboardInterrupt):
            Scheduler(store, jobs=1, worker=interrupt_on_second).run(specs)

        reporter = ProgressReporter(len(specs), enabled=False)
        grid = Scheduler(store, jobs=1, reporter=reporter).run(specs)
        assert len(grid) == 4
        assert reporter.cached == 1  # the pre-interrupt cell
        manifest = store.read_manifest()
        assert "interrupted" not in manifest  # clean completion clears it

    def test_pool_interrupt_terminates_workers_promptly(self, tmp_path):
        config = small_experiment(apps=["gcc"],
                                  schemes=["Baseline", "ESD"],
                                  requests=600)
        store = ResultStore(tmp_path / "store")
        scheduler = Scheduler(store, jobs=2,
                              worker=keyboard_interrupt_worker)
        started = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(jobs_from_experiment(config))
        # Graceful teardown, not a hang waiting for the pool join.
        assert time.monotonic() - started < 30.0
        assert store.read_manifest()["interrupted"] is True


class TestProgressAndManifest:
    def test_manifest_written_to_store(self, tmp_path):
        config = small_experiment(requests=600)
        store = tmp_path / "store"
        run_sweep(config, jobs=1, store=store)
        manifest = ResultStore(store).read_manifest()
        assert manifest["total_jobs"] == 4
        assert manifest["simulated"] == 4
        assert manifest["failed"] == 0
        assert len(manifest["jobs"]) == 4
        row = manifest["jobs"][0]
        assert {"app", "scheme", "digest", "status", "attempts",
                "duration_s", "error"} <= set(row)
        assert row["status"] == "simulated"

    def test_progress_lines_and_eta(self):
        fake_now = [0.0]
        stream = io.StringIO()
        reporter = ProgressReporter(4, stream=stream, interval_s=0.0,
                                    clock=lambda: fake_now[0])
        spec = jobs_from_experiment(small_experiment())[0]
        reporter.job_done(spec, "cached")
        assert reporter.eta_s() is None  # cache hits carry no rate signal
        fake_now[0] = 2.0
        reporter.job_done(spec, "simulated", duration_s=2.0)
        assert reporter.eta_s() == pytest.approx(2.0 / 1 * 2)
        reporter.finish()
        out = stream.getvalue()
        assert "[sweep] 1/4 done (1 cached)" in out
        assert "eta" in out
        assert "finished: 1 simulated, 1 cached, 0 failed" in out

    def test_ephemeral_store_runs_without_persistence(self):
        config = small_experiment(apps=["gcc"], schemes=["Baseline"],
                                  requests=600)
        grid = run_sweep(config, jobs=1)
        assert ("gcc", "Baseline") in grid
