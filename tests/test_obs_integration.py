"""Integration tests for the observability layer.

The load-bearing property: enabling observability must never change a
simulated result.  Summary rows with obs on are compared bit-exact against
obs off for every registered scheme, on both the fast and reference
engine paths (DESIGN.md §9's soundness rule).
"""

import json

from dataclasses import replace

import pytest

from repro.cli import main
from repro.common import small_test_config
from repro.common.config import ObservabilityConfig
from repro.obs import runtime
from repro.obs.export import read_trace_jsonl
from repro.registry import registered_scheme_names
from repro.sim.runner import ExperimentConfig, run_app
from repro.sweep import ResultStore, run_sweep
from repro.sweep.job import jobs_from_experiment

REQUESTS = 500


def _observed(system, **kwargs):
    defaults = {"enabled": True, "trace_capacity": 128, "sample_every": 3}
    defaults.update(kwargs)
    return replace(system, observability=ObservabilityConfig(**defaults))


class TestSoundness:
    """Observability on vs off: results must be bit-exact."""

    @pytest.mark.parametrize("scheme", registered_scheme_names())
    def test_summary_rows_identical_fast_path(self, scheme):
        system = replace(small_test_config(), use_fastpath=True)
        off = run_app("gcc", [scheme], system=system,
                      requests=REQUESTS)[scheme]
        on = run_app("gcc", [scheme], system=_observed(system),
                     requests=REQUESTS)[scheme]
        assert off.summary_row() == on.summary_row()
        assert off.extras == on.extras

    @pytest.mark.parametrize("scheme", registered_scheme_names()[:4])
    def test_summary_rows_identical_reference_path(self, scheme):
        system = replace(small_test_config(), use_fastpath=False)
        off = run_app("gcc", [scheme], system=system,
                      requests=REQUESTS)[scheme]
        on = run_app("gcc", [scheme], system=_observed(system),
                     requests=REQUESTS)[scheme]
        assert off.summary_row() == on.summary_row()
        assert off.extras == on.extras

    def test_disabled_run_attaches_no_report(self):
        result = run_app("gcc", ["ESD"], system=small_test_config(),
                         requests=REQUESTS)["ESD"]
        assert result.obs is None

    def test_run_scope_restored_after_engine_run(self):
        run_app("gcc", ["ESD"], system=_observed(small_test_config()),
                requests=REQUESTS)
        assert runtime.RUN is None


class TestReportContents:
    def test_report_carries_migrated_memo_counters(self):
        system = _observed(replace(small_test_config(), use_fastpath=True))
        result = run_app("gcc", ["ESD"], system=system,
                         requests=REQUESTS)["ESD"]
        report = result.obs
        names = {row["name"] for row in report["metrics"]}
        memo_names = {n for n in names if n.startswith("memo_")}
        assert memo_names  # migrated fast-path statistics present
        # Compatibility view: the same keys still appear in extras.
        assert memo_names <= set(result.extras)

    def test_registry_counters_match_legacy_channels(self):
        system = _observed(small_test_config())
        result = run_app("gcc", ["ESD"], system=system,
                         requests=REQUESTS)["ESD"]
        rows = {(row["name"], tuple(sorted(row["labels"].items()))): row
                for row in result.obs["metrics"]}
        efit_rate = rows[("efit_hit_rate", ())]
        assert efit_rate["value"] == pytest.approx(
            result.extras["efit_hit_rate"])
        amt_rate = rows[("amt_hit_rate", ())]
        assert amt_rate["value"] == pytest.approx(
            result.extras["amt_hit_rate"])
        assert ("dedup_hits", (("component", "scheme"),)) in rows

    def test_latency_histograms_cover_recorded_requests(self):
        system = _observed(small_test_config())
        result = run_app("gcc", ["ESD"], system=system,
                         requests=REQUESTS)["ESD"]
        hists = {tuple(sorted(row["labels"].items())): row
                 for row in result.obs["metrics"]
                 if row["type"] == "histogram"}
        assert hists[(("op", "write"),)]["count"] == result.writes
        assert hists[(("op", "read"),)]["count"] == result.reads

    def test_trace_ring_respects_capacity(self):
        system = _observed(small_test_config(), trace_capacity=32,
                           sample_every=1)
        result = run_app("gcc", ["ESD"], system=system,
                         requests=REQUESTS)["ESD"]
        stats = result.obs["trace_stats"]
        assert stats["capacity"] == 32
        assert len(result.obs["trace"]) <= 32
        assert stats["dropped"] == stats["recorded"] - stats["retained"]


class TestSweepPersistence:
    def test_obs_reports_stored_per_job(self, tmp_path):
        system = _observed(small_test_config())
        config = ExperimentConfig(apps=["gcc"],
                                  schemes=["Baseline", "ESD"],
                                  requests_per_app=REQUESTS, system=system)
        store_dir = tmp_path / "store"
        run_sweep(config, jobs=1, store=store_dir)
        store = ResultStore(store_dir)
        for spec in jobs_from_experiment(config):
            report = store.get_obs(spec.digest())
            assert report is not None
            assert report["obs_schema_version"] == 1

    def test_disabled_sweep_creates_no_obs_dir(self, tmp_path):
        config = ExperimentConfig(apps=["gcc"], schemes=["Baseline"],
                                  requests_per_app=REQUESTS,
                                  system=small_test_config())
        store_dir = tmp_path / "store"
        run_sweep(config, jobs=1, store=store_dir)
        assert not (store_dir / "obs").exists()


class TestCLI:
    def test_trace_round_trips_jsonl(self, tmp_path, capsys):
        out = tmp_path / "gcc.trace.jsonl"
        rc = main(["trace", "--scheme", "ESD", "--app", "gcc",
                   "--requests", "1200", "--capacity", "64",
                   "--out", str(out)])
        assert rc == 0
        assert "wrote 64 events" in capsys.readouterr().out
        events = read_trace_jsonl(out)
        assert len(events) == 64
        components = {e.component for e in events}
        assert components & {"engine", "controller", "timeline"}

    def test_trace_to_stdout(self, capsys):
        rc = main(["trace", "--scheme", "0", "--app", "gcc",
                   "--requests", "900", "--capacity", "16"])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 16
        json.loads(lines[0])

    def test_report_json(self, capsys):
        rc = main(["report", "--scheme", "ESD", "--app", "gcc",
                   "--requests", "1200"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "ESD"
        names = {row["name"] for row in payload["metrics"]}
        assert any(n.startswith("memo_") for n in names)
        assert "request_latency_ns" in names

    def test_report_csv_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.csv"
        rc = main(["report", "--scheme", "ESD", "--app", "gcc",
                   "--requests", "900", "--format", "csv",
                   "--out", str(out)])
        assert rc == 0
        header = out.read_text().splitlines()[0]
        assert header == "name,labels,type,value,count,sum,min,max"
