"""Tests for the ESD scheme itself."""

import pytest

from repro.common.config import (
    ESDConfig,
    MetadataCacheConfig,
    PCMConfig,
    SystemConfig,
)
from repro.common.types import AccessType, MemoryRequest, WritePathStage
from repro.common.units import kib, mib
from repro.core.esd import ESDScheme
from repro.ecc.codec import line_ecc


def wreq(addr, data, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.WRITE, data=data,
                         issue_time_ns=t)


def rreq(addr, t=0.0):
    return MemoryRequest(address=addr, access=AccessType.READ, issue_time_ns=t)


LINE = bytes(range(64))
OTHER = b"\x0F" * 64


@pytest.fixture
def scheme(config):
    return ESDScheme(config)


class TestWritePath:
    def test_first_write_is_unique(self, scheme):
        r = scheme.handle_write(wreq(0, LINE))
        assert not r.deduplicated
        assert r.wrote_line
        assert scheme.controller.data_writes == 1

    def test_duplicate_eliminated_after_byte_compare(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(64, LINE, t=500.0))
        assert r.deduplicated
        assert not r.wrote_line
        # The confirming read appears in the stage breakdown.
        assert WritePathStage.READ_FOR_COMPARISON in r.stages

    def test_no_fingerprint_compute_ever(self, scheme):
        """ESD's headline: zero hash computation on the write path."""
        for i in range(20):
            scheme.handle_write(wreq(i * 64, LINE if i % 2 else OTHER,
                                     t=i * 400.0))
        assert WritePathStage.FINGERPRINT_COMPUTE not in scheme.breakdown.by_stage

    def test_no_fingerprint_nvmm_lookup_ever(self, scheme):
        """Selective dedup: fingerprints are never fetched from NVMM."""
        for i in range(20):
            scheme.handle_write(wreq(i * 64, LINE if i % 2 else OTHER,
                                     t=i * 400.0))
        assert (WritePathStage.FINGERPRINT_NVMM_LOOKUP
                not in scheme.breakdown.by_stage)

    def test_unique_write_latency_has_no_hash(self, scheme):
        r = scheme.handle_write(wreq(0, LINE))
        # probe + encrypt + PCM write + metadata; far below SHA-1's 321 ns
        # compute alone plus the write.
        expected_max = (scheme.efit.probe_latency_ns
                        + scheme.crypto.encrypt_latency_ns
                        + scheme.config.pcm.write_latency_ns
                        + 5.0)
        assert r.latency_ns <= expected_max

    def test_read_back_correct(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, LINE, t=500.0))
        scheme.handle_write(wreq(128, OTHER, t=1000.0))
        assert scheme.handle_read(rreq(0, t=2000.0)).data == LINE
        assert scheme.handle_read(rreq(64, t=2100.0)).data == LINE
        assert scheme.handle_read(rreq(128, t=2200.0)).data == OTHER

    def test_self_rewrite_same_content_safe(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        r = scheme.handle_write(wreq(0, LINE, t=500.0))
        assert r.deduplicated
        assert scheme.handle_read(rreq(0, t=1000.0)).data == LINE

    def test_overwrite_frees_frame_and_efit_entry(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(0, OTHER, t=500.0))
        # LINE's frame is recycled, and its EFIT entry invalidated: a new
        # LINE write must be unique again.
        r = scheme.handle_write(wreq(64, LINE, t=1000.0))
        assert not r.deduplicated
        assert scheme.refcounts.live_frames() == 2


class TestECCCollisions:
    def test_collision_confirmed_by_bytes_not_ecc(self, config):
        scheme = ESDScheme(config)
        scheme.handle_write(wreq(0, LINE))
        ecc = line_ecc(LINE)
        # Craft a different line with a colliding ECC by brute force over
        # single-word tweaks: XOR a word with a codeword of the Hamming
        # code's kernel.  Simplest kernel member: flip data bits so that the
        # syndrome cancels - construct via linearity: find two words with
        # equal ECC.
        from repro.ecc.hamming import encode_word
        base = int.from_bytes(LINE[:8], "little")
        collider = None
        for delta in range(1, 1 << 16):
            if encode_word(base ^ delta) == encode_word(base):
                collider = base ^ delta
                break
        assert collider is not None, "no small kernel element found"
        colliding_line = collider.to_bytes(8, "little") + LINE[8:]
        assert colliding_line != LINE
        assert line_ecc(colliding_line) == ecc
        r = scheme.handle_write(wreq(64, colliding_line, t=500.0))
        # ECC matches but bytes differ: must NOT deduplicate.
        assert not r.deduplicated
        assert scheme.counters.get("ecc_collisions") == 1
        # Both contents remain readable.
        assert scheme.handle_read(rreq(0, t=1000.0)).data == LINE
        assert scheme.handle_read(rreq(64, t=1100.0)).data == colliding_line


class TestReferHOverflow:
    def test_saturated_referh_writes_new_line(self):
        cfg = SystemConfig(
            pcm=PCMConfig(capacity_bytes=mib(4), num_banks=4),
            metadata_cache=MetadataCacheConfig(efit_bytes=kib(8),
                                               amt_bytes=kib(8)),
            esd=ESDConfig(refer_h_max=3))
        scheme = ESDScheme(cfg)
        writes_before = None
        for i in range(10):
            scheme.handle_write(wreq(i * 64, LINE, t=i * 500.0))
        # referH saturates at 3; later identical writes go to fresh frames.
        assert scheme.counters.get("referh_overflows") >= 1
        # All logical lines still read back correctly.
        for i in range(10):
            assert scheme.handle_read(
                rreq(i * 64, t=10_000.0 + i * 100)).data == LINE


class TestSelectiveness:
    def test_small_efit_misses_cold_duplicates(self):
        cfg = SystemConfig(
            pcm=PCMConfig(capacity_bytes=mib(4), num_banks=4),
            metadata_cache=MetadataCacheConfig(
                efit_bytes=14 * 2,  # two entries
                amt_bytes=kib(8)))
        scheme = ESDScheme(cfg)
        contents = [bytes([i]) * 64 for i in range(1, 6)]
        t = 0.0
        for c in contents:          # 5 uniques through a 2-entry EFIT
            scheme.handle_write(wreq(0, c, t))
            t += 500.0
        # contents[0] was evicted from the EFIT long ago; rewriting it is
        # NOT detected as duplicate (selective dedup misses it).
        r = scheme.handle_write(wreq(64, contents[0], t))
        assert not r.deduplicated

    def test_metadata_footprint_is_amt_only_in_nvmm(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, OTHER, t=500.0))
        fp = scheme.metadata_footprint()
        # NVMM metadata = packed AMT entries only (no fingerprint store).
        from repro.core.amt import AMT_HOME_ENTRY_SIZE
        assert fp.nvmm_bytes == 2 * AMT_HOME_ENTRY_SIZE
        assert fp.onchip_bytes > 0

    def test_hit_rates_exposed(self, scheme):
        scheme.handle_write(wreq(0, LINE))
        scheme.handle_write(wreq(64, LINE, t=500.0))
        scheme.handle_read(rreq(0, t=1000.0))
        assert 0.0 <= scheme.efit_hit_rate <= 1.0
        assert 0.0 <= scheme.amt_hit_rate <= 1.0
