"""Tests for trace serialization."""

import io
import random
import struct

import pytest

from repro.common.errors import TraceFormatError
from repro.common.types import (
    AccessType,
    MemoryRequest,
    request_unchecked,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import (
    MAGIC,
    _pack_records,
    _parse_records,
    _parse_records_vectorized,
    capture_trace,
    read_trace_list,
    roundtrip_bytes,
    trace_record_count,
    write_trace,
)


def sample_requests():
    return [
        MemoryRequest(address=0, access=AccessType.WRITE,
                      data=bytes(range(64)), issue_time_ns=1.5, core=2, seq=1),
        MemoryRequest(address=128, access=AccessType.READ,
                      issue_time_ns=3.25, core=0, seq=2),
    ]


class TestRoundtrip:
    def test_simple_roundtrip(self):
        original = sample_requests()
        restored = roundtrip_bytes(original)
        assert len(restored) == 2
        for a, b in zip(original, restored):
            assert a.address == b.address
            assert a.access == b.access
            assert a.data == b.data
            assert a.issue_time_ns == b.issue_time_ns
            assert a.core == b.core
            assert a.seq == b.seq

    def test_generated_trace_roundtrip(self):
        original = TraceGenerator("gcc", seed=3).generate_list(400)
        restored = roundtrip_bytes(original)
        assert [(r.address, r.access, r.data, r.seq) for r in original] == \
               [(r.address, r.access, r.data, r.seq) for r in restored]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.esd"
        original = TraceGenerator("x264", seed=3).generate_list(100)
        count = write_trace(original, path)
        assert count == 100
        restored = read_trace_list(path)
        assert len(restored) == 100
        assert restored[0].address == original[0].address

    def test_empty_trace(self):
        assert roundtrip_bytes([]) == []


class TestFormatErrors:
    def test_bad_magic(self):
        buf = io.BytesIO(b"NOTATRACE" + bytes(32))
        with pytest.raises(TraceFormatError):
            read_trace_list(buf)

    def test_truncated_header(self):
        buf = io.BytesIO(MAGIC)
        with pytest.raises(TraceFormatError):
            read_trace_list(buf)

    def test_truncated_record(self):
        buf = io.BytesIO()
        write_trace(sample_requests(), buf)
        data = buf.getvalue()[:-10]
        with pytest.raises(TraceFormatError):
            read_trace_list(io.BytesIO(data))

    def test_bad_version(self):
        buf = io.BytesIO()
        write_trace([], buf)
        raw = bytearray(buf.getvalue())
        raw[8] = 99  # version field
        with pytest.raises(TraceFormatError):
            read_trace_list(io.BytesIO(bytes(raw)))


def _keys(requests):
    return [(r.address, r.access, r.data, r.issue_time_ns, r.core, r.seq)
            for r in requests]


def _v2_blob(requests, **kwargs):
    buf = io.BytesIO()
    write_trace(requests, buf, version=2, **kwargs)
    return buf.getvalue()


class TestV2Container:
    """The chunked (optionally compressed) version-2 container."""

    def test_v1_v2_decode_identically(self):
        original = TraceGenerator("gcc", seed=3).generate_list(500)
        assert _keys(roundtrip_bytes(original, version=1)) == \
               _keys(roundtrip_bytes(original, version=2)) == _keys(original)

    def test_compressed_roundtrip_smaller(self):
        original = TraceGenerator("deepsjeng", seed=5).generate_list(800)
        plain = _v2_blob(original)
        packed = _v2_blob(original, compress=True)
        assert len(packed) < len(plain)
        assert _keys(read_trace_list(io.BytesIO(packed))) == _keys(original)

    @pytest.mark.parametrize("chunk_records", [1, 7, 100, 101, 4096])
    def test_chunk_boundaries(self, chunk_records):
        """Framing changes with chunk size; decoded requests never do."""
        original = TraceGenerator("lbm", seed=7).generate_list(101)
        blob = _v2_blob(original, chunk_records=chunk_records)
        assert _keys(read_trace_list(io.BytesIO(blob))) == _keys(original)

    @pytest.mark.parametrize("compress", [False, True])
    def test_empty_trace(self, compress):
        blob = _v2_blob([], compress=compress)
        assert read_trace_list(io.BytesIO(blob)) == []
        assert trace_record_count(io.BytesIO(blob)) == 0

    def test_streaming_writer_takes_iterator(self, tmp_path):
        """write_trace must accept a generator (no len, one pass)."""
        path = tmp_path / "stream.esdtrace"
        count = write_trace(TraceGenerator("x264", seed=9).generate(300),
                            path, chunk_records=64)
        assert count == 300
        assert trace_record_count(path) == 300

    @pytest.mark.parametrize("vec", [False, True])
    def test_parser_parity_across_modes(self, monkeypatch, vec):
        from repro.vec import flags as vec_flags
        original = TraceGenerator("gcc", seed=11).generate_list(257)
        blob = _v2_blob(original, compress=True, chunk_records=50)
        monkeypatch.setattr(vec_flags, "ENABLED", vec)
        assert _keys(read_trace_list(io.BytesIO(blob))) == _keys(original)

    def test_bad_chunk_records(self):
        with pytest.raises(TraceFormatError):
            write_trace([], io.BytesIO(), version=2, chunk_records=0)

    def test_compress_requires_v2(self):
        with pytest.raises(TraceFormatError, match="v2"):
            write_trace([], io.BytesIO(), version=1, compress=True)

    def test_unsupported_write_version(self):
        with pytest.raises(TraceFormatError):
            write_trace([], io.BytesIO(), version=3)


class TestTraceRecordCount:
    def test_v1(self):
        buf = io.BytesIO()
        write_trace(sample_requests(), buf, version=1)
        buf.seek(0)
        assert trace_record_count(buf) == 2

    def test_v2_multi_chunk(self):
        original = TraceGenerator("gcc", seed=3).generate_list(130)
        blob = _v2_blob(original, chunk_records=32)
        assert trace_record_count(io.BytesIO(blob)) == 130

    def test_truncated_v2_raises(self):
        blob = _v2_blob(sample_requests())
        with pytest.raises(TraceFormatError, match="end-of-trace"):
            trace_record_count(io.BytesIO(blob[:-20]))

    def test_footer_mismatch_raises(self):
        blob = bytearray(_v2_blob(sample_requests()))
        struct.pack_into("<Q", blob, len(blob) - 8, 99)
        with pytest.raises(TraceFormatError, match="count mismatch"):
            trace_record_count(io.BytesIO(bytes(blob)))


class TestCaptureTrace:
    def test_capture_and_read(self, tmp_path):
        path = tmp_path / "cap.esdtrace"
        original = TraceGenerator("gcc", seed=3).generate_list(64)
        assert capture_trace(iter(original), path, compress=True) == 64
        assert _keys(read_trace_list(path)) == _keys(original)
        # No temp litter once the capture finalized.
        assert [p.name for p in tmp_path.iterdir()] == ["cap.esdtrace"]

    def test_failed_capture_leaves_no_file(self, tmp_path):
        path = tmp_path / "cap.esdtrace"

        def exploding():
            yield from sample_requests()
            raise RuntimeError("source died")

        with pytest.raises(RuntimeError):
            capture_trace(exploding(), path)
        assert list(tmp_path.iterdir()) == []


class TestPackRecordErrors:
    """Satellite 1: the packer raises typed errors, not bare asserts."""

    def test_write_without_payload(self):
        bad = request_unchecked(0, AccessType.WRITE, None, 1.0, 0, 1)
        with pytest.raises(TraceFormatError, match="no 64-byte payload"):
            _pack_records([bad])

    def test_write_with_short_payload(self):
        bad = request_unchecked(0, AccessType.WRITE, b"\x01" * 8, 1.0, 0, 1)
        with pytest.raises(TraceFormatError, match="no 64-byte payload"):
            _pack_records([bad])

    def test_read_with_payload(self):
        bad = request_unchecked(0, AccessType.READ, bytes(64), 1.0, 0, 1)
        with pytest.raises(TraceFormatError, match="carries a payload"):
            _pack_records([bad])

    @pytest.mark.parametrize("version", [1, 2])
    def test_surfaces_through_write_trace(self, version):
        bad = request_unchecked(0, AccessType.WRITE, None, 1.0, 0, 1)
        with pytest.raises(TraceFormatError):
            write_trace([bad], io.BytesIO(), version=version)

    def test_runs_under_optimized_mode(self):
        """The check must survive ``python -O`` (it is not an assert)."""
        import subprocess
        import sys
        code = ("from repro.common.types import AccessType, "
                "request_unchecked\n"
                "from repro.common.errors import TraceFormatError\n"
                "from repro.workloads.trace import _pack_records\n"
                "bad = request_unchecked(0, AccessType.WRITE, None, "
                "1.0, 0, 1)\n"
                "try:\n"
                "    _pack_records([bad])\n"
                "except TraceFormatError:\n"
                "    raise SystemExit(0)\n"
                "raise SystemExit(1)\n")
        proc = subprocess.run([sys.executable, "-O", "-c", code])
        assert proc.returncode == 0


class TestTrailingBytes:
    """Satellite 2: stray bytes past the declared records must raise."""

    def _v1_blob(self, requests):
        buf = io.BytesIO()
        write_trace(requests, buf, version=1)
        return buf.getvalue()

    @pytest.mark.parametrize("vec", [False, True])
    def test_v1_trailing_bytes(self, monkeypatch, vec):
        from repro.vec import flags as vec_flags
        monkeypatch.setattr(vec_flags, "ENABLED", vec)
        blob = self._v1_blob(sample_requests()) + b"\x00" * 7
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            read_trace_list(io.BytesIO(blob))

    def test_v1_error_parity_between_parsers(self):
        blob = self._v1_blob(sample_requests())[20:] + b"\xff" * 3
        with pytest.raises(TraceFormatError) as scalar_err:
            list(_parse_records(blob, 2))
        with pytest.raises(TraceFormatError) as vec_err:
            list(_parse_records_vectorized(blob, 2))
        assert str(scalar_err.value) == str(vec_err.value)

    @pytest.mark.parametrize("vec", [False, True])
    def test_v2_trailing_bytes(self, monkeypatch, vec):
        from repro.vec import flags as vec_flags
        monkeypatch.setattr(vec_flags, "ENABLED", vec)
        blob = _v2_blob(sample_requests()) + b"junk"
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            read_trace_list(io.BytesIO(blob))


class TestV2FormatErrors:
    def test_missing_end_marker(self):
        blob = _v2_blob(sample_requests())
        with pytest.raises(TraceFormatError, match="end-of-trace"):
            read_trace_list(io.BytesIO(blob[:-20]))

    def test_unknown_flags(self):
        blob = bytearray(_v2_blob(sample_requests()))
        struct.pack_into("<H", blob, 10, 0x8000)  # header flags field
        with pytest.raises(TraceFormatError, match="unknown trace flags"):
            read_trace_list(io.BytesIO(bytes(blob)))

    def test_footer_count_mismatch(self):
        blob = bytearray(_v2_blob(sample_requests()))
        struct.pack_into("<Q", blob, len(blob) - 8, 7)
        with pytest.raises(TraceFormatError, match="count mismatch"):
            read_trace_list(io.BytesIO(bytes(blob)))

    def test_corrupt_compressed_chunk(self):
        blob = bytearray(_v2_blob(sample_requests(), compress=True))
        # Header is 20 bytes, the chunk frame 12; the zlib stream starts
        # at 32.  Flip a byte in its middle.
        _, _, stored_len = struct.unpack_from("<III", blob, 20)
        blob[32 + stored_len // 2] ^= 0xFF
        with pytest.raises(TraceFormatError,
                           match="corrupt compressed chunk"):
            read_trace_list(io.BytesIO(bytes(blob)))

    def test_chunk_length_mismatch(self):
        blob = bytearray(_v2_blob(sample_requests()))
        # First chunk frame starts right after the 20-byte header:
        # (count, raw_len, stored_len).  Lie about raw_len.
        count, raw_len, stored_len = struct.unpack_from("<III", blob, 20)
        struct.pack_into("<III", blob, 20, count, raw_len + 1, stored_len)
        with pytest.raises(TraceFormatError, match="length mismatch"):
            read_trace_list(io.BytesIO(bytes(blob)))


class TestMalformedRecordFuzz:
    """Satellite 3: both parsers agree on every corrupted payload."""

    def _outcome(self, parser, payload, count):
        try:
            return ("ok", _keys(parser(payload, count)))
        except (TraceFormatError, ValueError) as exc:
            return ("err", type(exc).__name__, str(exc))

    def test_single_byte_corruptions_agree(self):
        original = TraceGenerator("gcc", seed=3).generate_list(40)
        payload, count = _pack_records(original)
        rng = random.Random(20230)
        positions = rng.sample(range(len(payload)), 120)
        for pos in positions:
            mutated = bytearray(payload)
            mutated[pos] ^= 0xFF
            mutated = bytes(mutated)
            scalar = self._outcome(_parse_records, mutated, count)
            vec = self._outcome(_parse_records_vectorized, mutated, count)
            assert scalar == vec, (
                f"parser divergence at byte {pos}: {scalar} != {vec}")

    def test_truncations_agree(self):
        original = TraceGenerator("lbm", seed=5).generate_list(12)
        payload, count = _pack_records(original)
        for cut in range(0, len(payload), 41):
            mutated = payload[:cut]
            scalar = self._outcome(_parse_records, mutated, count)
            vec = self._outcome(_parse_records_vectorized, mutated, count)
            assert scalar == vec, f"divergence at truncation {cut}"
