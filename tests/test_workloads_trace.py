"""Tests for trace serialization."""

import io

import pytest

from repro.common.errors import TraceFormatError
from repro.common.types import AccessType, MemoryRequest
from repro.workloads.generator import TraceGenerator
from repro.workloads.trace import (
    MAGIC,
    read_trace_list,
    roundtrip_bytes,
    write_trace,
)


def sample_requests():
    return [
        MemoryRequest(address=0, access=AccessType.WRITE,
                      data=bytes(range(64)), issue_time_ns=1.5, core=2, seq=1),
        MemoryRequest(address=128, access=AccessType.READ,
                      issue_time_ns=3.25, core=0, seq=2),
    ]


class TestRoundtrip:
    def test_simple_roundtrip(self):
        original = sample_requests()
        restored = roundtrip_bytes(original)
        assert len(restored) == 2
        for a, b in zip(original, restored):
            assert a.address == b.address
            assert a.access == b.access
            assert a.data == b.data
            assert a.issue_time_ns == b.issue_time_ns
            assert a.core == b.core
            assert a.seq == b.seq

    def test_generated_trace_roundtrip(self):
        original = TraceGenerator("gcc", seed=3).generate_list(400)
        restored = roundtrip_bytes(original)
        assert [(r.address, r.access, r.data, r.seq) for r in original] == \
               [(r.address, r.access, r.data, r.seq) for r in restored]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.esd"
        original = TraceGenerator("x264", seed=3).generate_list(100)
        count = write_trace(original, path)
        assert count == 100
        restored = read_trace_list(path)
        assert len(restored) == 100
        assert restored[0].address == original[0].address

    def test_empty_trace(self):
        assert roundtrip_bytes([]) == []


class TestFormatErrors:
    def test_bad_magic(self):
        buf = io.BytesIO(b"NOTATRACE" + bytes(32))
        with pytest.raises(TraceFormatError):
            read_trace_list(buf)

    def test_truncated_header(self):
        buf = io.BytesIO(MAGIC)
        with pytest.raises(TraceFormatError):
            read_trace_list(buf)

    def test_truncated_record(self):
        buf = io.BytesIO()
        write_trace(sample_requests(), buf)
        data = buf.getvalue()[:-10]
        with pytest.raises(TraceFormatError):
            read_trace_list(io.BytesIO(data))

    def test_bad_version(self):
        buf = io.BytesIO()
        write_trace([], buf)
        raw = bytearray(buf.getvalue())
        raw[8] = 99  # version field
        with pytest.raises(TraceFormatError):
            read_trace_list(io.BytesIO(bytes(raw)))
