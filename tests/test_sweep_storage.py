"""Tests for the pluggable storage layer: backends, leases, migration."""

import json
import os
import threading
import time

import pytest

from repro.common import LeaseError, UnknownBackendError
from repro.sweep import (
    DirStorageBackend,
    ResultStore,
    SqliteStorageBackend,
    fsync_atomic_write,
    make_storage_backend,
    migrate_store,
    open_store,
    parse_store_spec,
    storage_backend_names,
)

DIGEST = "a" * 64
OTHER = "b" * 64


@pytest.fixture(params=["dir", "sqlite"])
def backend(request, tmp_path):
    if request.param == "dir":
        be = DirStorageBackend(tmp_path / "store")
    else:
        be = SqliteStorageBackend(tmp_path / "store.sqlite")
    yield be
    be.close()


class TestRegistry:
    def test_names(self):
        assert storage_backend_names() == ["dir", "sqlite"]

    def test_unknown_name_lists_registered(self, tmp_path):
        with pytest.raises(UnknownBackendError) as excinfo:
            make_storage_backend("bogus", tmp_path / "x")
        assert "dir" in str(excinfo.value)
        assert "sqlite" in str(excinfo.value)

    def test_make_by_name(self, tmp_path):
        assert isinstance(make_storage_backend("dir", tmp_path / "d"),
                          DirStorageBackend)
        sq = make_storage_backend("sqlite", tmp_path / "s.sqlite")
        assert isinstance(sq, SqliteStorageBackend)
        sq.close()


class TestParseStoreSpec:
    def test_plain_path_is_dir(self, tmp_path):
        be = parse_store_spec(str(tmp_path / "store"))
        assert isinstance(be, DirStorageBackend)

    def test_sqlite_url_forces_sqlite(self, tmp_path):
        be = parse_store_spec(f"sqlite://{tmp_path / 'x.bin'}")
        assert isinstance(be, SqliteStorageBackend)
        be.close()

    def test_sqlite_suffix_infers_sqlite(self, tmp_path):
        be = parse_store_spec(str(tmp_path / "x.sqlite"))
        assert isinstance(be, SqliteStorageBackend)
        be.close()

    def test_explicit_storage_wins(self, tmp_path):
        be = parse_store_spec(str(tmp_path / "plain"), storage="sqlite")
        assert isinstance(be, SqliteStorageBackend)
        be.close()

    def test_conflicting_url_and_storage_rejected(self, tmp_path):
        with pytest.raises(UnknownBackendError):
            parse_store_spec(f"sqlite://{tmp_path / 'x'}", storage="dir")

    def test_spec_round_trip_reopens_same_backend(self, backend):
        reopened = parse_store_spec(backend.spec)
        assert type(reopened) is type(backend)
        reopened.close()


class TestFsyncDurability:
    def test_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd),
                                                     real_fsync(fd))[1])
        target = tmp_path / "row.json"
        fsync_atomic_write(target, '{"k": 1}')
        assert target.read_text() == '{"k": 1}'
        # One fsync for the temp file's data, one for the directory entry
        # after os.replace — both halves of the durability contract.
        assert len(synced) >= 2

    def test_no_temp_residue(self, tmp_path):
        fsync_atomic_write(tmp_path / "row.json", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["row.json"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        target = tmp_path / "row.json"
        fsync_atomic_write(target, "old")
        fsync_atomic_write(target, "new")
        assert target.read_text() == "new"


class TestBackendRoundTrips:
    def test_result_text_round_trip(self, backend):
        assert backend.read_result(DIGEST) is None
        assert not backend.has_result(DIGEST)
        text = '{"z": 1, "a": 2}'  # deliberate non-sorted key order
        backend.write_result(DIGEST, text)
        assert backend.read_result(DIGEST) == text
        assert backend.has_result(DIGEST)
        assert list(backend.iter_result_digests()) == [DIGEST]

    def test_obs_round_trip(self, backend):
        assert backend.read_obs(DIGEST) is None
        backend.write_obs(DIGEST, '{"m": 3}')
        assert backend.read_obs(DIGEST) == '{"m": 3}'

    def test_manifest_round_trip(self, backend):
        assert backend.read_manifest() is None
        backend.write_manifest('{"total": 4}')
        assert backend.read_manifest() == '{"total": 4}'
        backend.write_manifest('{"total": 5}')
        assert backend.read_manifest() == '{"total": 5}'

    def test_trace_round_trip(self, backend):
        payload = bytes(range(256)) * 4
        assert not backend.has_trace("t1")
        with pytest.raises(FileNotFoundError):
            backend.trace_local_path("t1")
        path = backend.ensure_trace("t1", lambda fh: fh.write(payload))
        assert backend.has_trace("t1")
        assert path.read_bytes() == payload
        assert backend.trace_local_path("t1").read_bytes() == payload
        # Second ensure must not re-invoke the writer.
        again = backend.ensure_trace(
            "t1", lambda fh: (_ for _ in ()).throw(AssertionError))
        assert again.read_bytes() == payload

    def test_queue_round_trip(self, backend):
        assert backend.iter_queue() == []
        backend.enqueue(DIGEST, '{"spec": 1}')
        backend.enqueue(OTHER, '{"spec": 2}')
        backend.enqueue(DIGEST, '{"spec": 1}')  # idempotent
        assert backend.iter_queue() == sorted([DIGEST, OTHER])
        assert backend.queue_payload(DIGEST) == '{"spec": 1}'
        assert backend.queue_payload("c" * 64) is None

    def test_failure_round_trip(self, backend):
        assert backend.get_failure(DIGEST) is None
        backend.mark_failed(DIGEST, "ValueError('boom')", 3)
        failure = backend.get_failure(DIGEST)
        assert failure["error"] == "ValueError('boom')"
        assert failure["attempts"] == 3

    def test_completions_round_trip(self, backend):
        assert backend.completions() == []
        backend.record_completion(DIGEST, "w1", 1.5, 1)
        backend.record_completion(OTHER, "w2", 0.5, 2)
        rows = backend.completions()
        assert len(rows) == 2
        by_digest = {row["digest"]: row for row in rows}
        assert by_digest[DIGEST]["worker"] == "w1"
        assert by_digest[OTHER]["attempts"] == 2


class TestLeaseProtocol:
    def test_claim_is_exclusive(self, backend):
        backend.enqueue(DIGEST, "{}")
        claim = backend.claim(DIGEST, "w1", ttl_s=30.0)
        assert claim is not None and claim.worker == "w1"
        assert claim.attempts == 1
        assert backend.claim(DIGEST, "w2", ttl_s=30.0) is None

    def test_claim_refused_for_terminal_jobs(self, backend):
        backend.write_result(DIGEST, "{}")
        assert backend.claim(DIGEST, "w1", ttl_s=30.0) is None
        backend.mark_failed(OTHER, "boom", 1)
        assert backend.claim(OTHER, "w1", ttl_s=30.0) is None

    def test_renew_only_by_owner(self, backend):
        backend.claim(DIGEST, "w1", ttl_s=30.0)
        assert backend.renew(DIGEST, "w1", ttl_s=30.0)
        assert not backend.renew(DIGEST, "w2", ttl_s=30.0)
        assert not backend.renew(OTHER, "w1", ttl_s=30.0)

    def test_release_guards_ownership(self, backend):
        backend.claim(DIGEST, "w1", ttl_s=30.0)
        with pytest.raises(LeaseError):
            backend.release(DIGEST, "w2")
        backend.release(DIGEST, "w1")
        # Released (not expired): a new claim succeeds, attempts carry on,
        # and a clean hand-off is not counted as a reclaim.
        claim = backend.claim(DIGEST, "w2", ttl_s=30.0)
        assert claim is not None and claim.attempts == 2
        assert backend.reclaim_count() == 0

    def test_expired_lease_is_reclaimed(self, backend):
        first = backend.claim(DIGEST, "w1", ttl_s=0.05)
        assert first is not None
        time.sleep(0.1)
        stolen = backend.claim(DIGEST, "w2", ttl_s=30.0)
        assert stolen is not None and stolen.worker == "w2"
        # Attempts survive the reclaim (retry budgeting for poison jobs)
        # and the protocol records that a dead worker's lease was taken.
        assert stolen.attempts == 2
        assert backend.reclaim_count() == 1

    def test_live_claims_view(self, backend):
        backend.claim(DIGEST, "w1", ttl_s=30.0)
        backend.claim(OTHER, "w2", ttl_s=0.01)
        time.sleep(0.05)
        live = backend.live_claims()
        assert [c.worker for c in live] == ["w1"]
        info = backend.claim_info(DIGEST)
        assert info.worker == "w1" and info.attempts == 1

    def test_racing_claims_have_exactly_one_winner(self, backend):
        backend.enqueue(DIGEST, "{}")
        barrier = threading.Barrier(8)
        wins = []

        def contend(i):
            barrier.wait()
            claim = backend.claim(DIGEST, f"w{i}", ttl_s=30.0)
            if claim is not None:
                wins.append(claim.worker)

        threads = [threading.Thread(target=contend, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestDirLayoutCompatibility:
    def test_plain_store_keeps_original_layout(self, tmp_path):
        """No queue subdirectories appear unless a distributed sweep runs."""
        store = ResultStore(tmp_path / "store")
        store.backend.write_result(DIGEST, "{}")
        store.write_manifest({"total": 1})
        entries = sorted(p.name for p in (tmp_path / "store").iterdir())
        assert entries == ["manifest.json", "results", "traces"]

    def test_open_store_passes_result_store_through(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert open_store(store) is store


class TestMigration:
    def _populate(self, store):
        # Deliberately unsorted keys: migration must preserve raw bytes,
        # including key order a JSON re-encode would destroy.
        store.backend.write_result(DIGEST, '{"z": 1, "a": [1, 2]}')
        store.backend.write_result(OTHER, '{"y": {"n": 0.1}}')
        store.backend.write_obs(DIGEST, '{"metrics": []}')
        store.backend.write_manifest('{"total_jobs": 2}')
        store.backend.ensure_trace(
            "gcc-s7", lambda fh: fh.write(b"\x00trace\xff" * 16))

    def _assert_identical(self, src, dst):
        assert list(dst.backend.iter_result_digests()) == \
            list(src.backend.iter_result_digests())
        for digest in src.backend.iter_result_digests():
            assert dst.backend.read_result(digest) == \
                src.backend.read_result(digest)
        assert dst.backend.read_obs(DIGEST) == src.backend.read_obs(DIGEST)
        assert dst.backend.read_manifest() == src.backend.read_manifest()
        assert dst.backend.trace_local_path("gcc-s7").read_bytes() == \
            src.backend.trace_local_path("gcc-s7").read_bytes()

    def test_dir_to_sqlite_to_dir_round_trip(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        self._populate(a)
        b = open_store(f"sqlite://{tmp_path / 'b.sqlite'}")
        counts = migrate_store(a, b)
        assert counts == {"results": 2, "obs": 1, "traces": 1,
                          "manifest": 1}
        self._assert_identical(a, b)
        c = ResultStore(tmp_path / "c")
        migrate_store(b, c)
        self._assert_identical(a, c)
        b.close()

    def test_migrated_rows_load_as_results(self, tmp_path):
        """A migrated store serves cache hits exactly like the original."""
        src = ResultStore(tmp_path / "src")
        payload = json.dumps({"job": {}, "result": {"v": 1}})
        src.backend.write_result(DIGEST, payload)
        dst = open_store(str(tmp_path / "dst.sqlite"))
        migrate_store(src, dst)
        assert dst.backend.read_result(DIGEST) == payload
        dst.close()
