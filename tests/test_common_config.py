"""Tests for repro.common.config (Table I defaults and validation)."""

import pytest

from repro.common.config import (
    CacheLevelConfig,
    DeWriteConfig,
    ESDConfig,
    MetadataCacheConfig,
    PCMConfig,
    ProcessorConfig,
    SystemConfig,
    default_config,
    small_test_config,
)
from repro.common.errors import ConfigError
from repro.common.units import gib, kib, mib


class TestTable1Defaults:
    """The defaults must match the paper's Table I."""

    def test_processor(self):
        p = ProcessorConfig()
        assert p.cores == 8
        assert p.clock_ghz == 2.0

    def test_l1(self):
        p = ProcessorConfig()
        assert p.l1.capacity_bytes == kib(32)
        assert p.l1.associativity == 8
        assert p.l1.latency_cycles == 2

    def test_l2(self):
        p = ProcessorConfig()
        assert p.l2.capacity_bytes == kib(256)
        assert p.l2.latency_cycles == 8

    def test_l3(self):
        p = ProcessorConfig()
        assert p.l3.capacity_bytes == mib(16)
        assert p.l3.latency_cycles == 25

    def test_pcm(self):
        pcm = PCMConfig()
        assert pcm.capacity_bytes == gib(16)
        assert pcm.read_latency_ns == 75.0
        assert pcm.write_latency_ns == 150.0
        assert pcm.read_energy_nj == 1.49
        assert pcm.write_energy_nj == 6.75

    def test_metadata_caches(self):
        mc = MetadataCacheConfig()
        assert mc.efit_bytes == kib(512)
        assert mc.amt_bytes == kib(512)

    def test_cycle_time(self):
        assert ProcessorConfig().cycle_ns == pytest.approx(0.5)


class TestCacheLevelConfig:
    def test_geometry(self):
        c = CacheLevelConfig(name="X", capacity_bytes=kib(32),
                             associativity=8, latency_cycles=2)
        assert c.num_lines == 512
        assert c.num_sets == 64

    def test_rejects_non_divisible_capacity(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="X", capacity_bytes=1000,
                             associativity=8, latency_cycles=2)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="X", capacity_bytes=3 * kib(64),
                             associativity=8, latency_cycles=1)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="X", capacity_bytes=kib(32),
                             associativity=0, latency_cycles=2)


class TestPCMConfigValidation:
    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            PCMConfig(read_latency_ns=-1)

    def test_rejects_odd_bank_count(self):
        with pytest.raises(ConfigError):
            PCMConfig(num_banks=3)

    def test_num_lines(self):
        pcm = PCMConfig(capacity_bytes=mib(1))
        assert pcm.num_lines == mib(1) // 64


class TestESDConfig:
    def test_refer_h_is_one_byte(self):
        with pytest.raises(ConfigError):
            ESDConfig(refer_h_max=256)
        with pytest.raises(ConfigError):
            ESDConfig(refer_h_max=0)

    def test_decay_validation(self):
        with pytest.raises(ConfigError):
            ESDConfig(decay_period=0)


class TestDeWriteConfig:
    def test_predictor_bits_range(self):
        with pytest.raises(ConfigError):
            DeWriteConfig(predictor_bits=0)
        with pytest.raises(ConfigError):
            DeWriteConfig(predictor_bits=9)


class TestSystemConfigBuilders:
    def test_with_metadata_cache(self):
        cfg = default_config().with_metadata_cache(efit_bytes=kib(64))
        assert cfg.metadata_cache.efit_bytes == kib(64)
        # Untouched field preserved.
        assert cfg.metadata_cache.amt_bytes == kib(512)
        # Original is unchanged (frozen copies).
        assert default_config().metadata_cache.efit_bytes == kib(512)

    def test_with_esd(self):
        cfg = default_config().with_esd(use_lrcu=False, refer_h_max=100)
        assert cfg.esd.use_lrcu is False
        assert cfg.esd.refer_h_max == 100

    def test_with_seed(self):
        assert default_config().with_seed(99).seed == 99

    def test_small_test_config_is_small(self):
        small = small_test_config()
        assert small.pcm.capacity_bytes < default_config().pcm.capacity_bytes
        assert small.metadata_cache.efit_bytes < kib(512)
