"""Tests for the counter integrity tree."""

import pytest

from repro.common.errors import IntegrityError
from repro.crypto.counter_mode import CounterTable
from repro.crypto.integrity import (
    COUNTERS_PER_LEAF,
    CounterIntegrityTree,
)


@pytest.fixture
def protected():
    counters = CounterTable()
    tree = CounterIntegrityTree(counters, num_lines=4096)
    return counters, tree


class TestCleanOperation:
    def test_fresh_tree_verifies(self, protected):
        _, tree = protected
        tree.verify(0)
        tree.verify(4095)

    def test_update_then_verify(self, protected):
        counters, tree = protected
        for line in (0, 100, 4095):
            counters.advance(line)
            tree.update(line)
        for line in (0, 100, 4095, 55):
            tree.verify(line)

    def test_repeated_updates(self, protected):
        counters, tree = protected
        for _ in range(20):
            counters.advance(7)
            tree.update(7)
        tree.verify(7)

    def test_out_of_range(self, protected):
        _, tree = protected
        with pytest.raises(ValueError):
            tree.verify(4096)

    def test_sparse_storage(self, protected):
        counters, tree = protected
        counters.advance(0)
        tree.update(0)
        # One path of nodes, not the whole tree.
        assert tree.node_count() <= tree.depth

    def test_stats(self, protected):
        counters, tree = protected
        counters.advance(1)
        tree.update(1)
        tree.verify(1)
        assert tree.updates == 1
        assert tree.verifications == 1


class TestTamperDetection:
    def test_counter_rollback_detected(self, protected):
        counters, tree = protected
        counters.advance(50)
        counters.advance(50)
        tree.update(50)
        tree.update(50)
        counters.counters[50] = 1  # rollback attack
        with pytest.raises(IntegrityError):
            tree.verify(50)

    def test_counter_injection_detected(self, protected):
        counters, tree = protected
        counters.counters[123] = 7  # counter set without tree update
        with pytest.raises(IntegrityError):
            tree.verify(123)

    def test_neighbour_tamper_detected_via_shared_leaf(self, protected):
        counters, tree = protected
        counters.advance(0)
        tree.update(0)
        # Line 1 shares line 0's leaf; tampering it breaks verification of
        # any line in the leaf.
        counters.counters[1] = 99
        with pytest.raises(IntegrityError):
            tree.verify(0)

    def test_untouched_region_remains_valid_after_tamper_repair(self, protected):
        counters, tree = protected
        counters.advance(9)
        tree.update(9)
        counters.counters[9] += 1
        with pytest.raises(IntegrityError):
            tree.verify(9)
        counters.counters[9] -= 1
        tree.verify(9)  # consistent again

    def test_verify_all_touched(self, protected):
        counters, tree = protected
        lines = [0, 8, 16, 4088]
        for line in lines:
            counters.advance(line)
            tree.update(line)
        assert tree.verify_all_touched() == len(lines)


class TestGeometry:
    def test_leaf_grouping(self):
        counters = CounterTable()
        tree = CounterIntegrityTree(counters, num_lines=64)
        assert tree.num_leaves == 64 // COUNTERS_PER_LEAF

    def test_depth_grows_logarithmically(self):
        counters = CounterTable()
        small = CounterIntegrityTree(counters, num_lines=64)
        large = CounterIntegrityTree(counters, num_lines=64 * 8 * 8)
        assert large.depth == small.depth + 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CounterIntegrityTree(CounterTable(), num_lines=0)
