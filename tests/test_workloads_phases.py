"""Tests for phased workloads."""

import pytest

from repro.workloads.phases import CANONICAL_PHASES, Phase, PhasedTraceGenerator


class TestPhase:
    def test_valid(self):
        Phase(app="gcc", requests=100)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            Phase(app="doom", requests=100)

    def test_nonpositive_length(self):
        with pytest.raises(ValueError):
            Phase(app="gcc", requests=0)


class TestPhasedTraceGenerator:
    def test_total_length(self):
        gen = PhasedTraceGenerator([("gcc", 300), ("lbm", 200)], seed=3)
        trace = gen.generate_list()
        assert len(trace) == 500
        assert gen.total_requests == 500

    def test_tuple_promotion(self):
        gen = PhasedTraceGenerator([("gcc", 10)])
        assert gen.phases[0] == Phase(app="gcc", requests=10)

    def test_monotonic_clock_across_phases(self):
        gen = PhasedTraceGenerator([("gcc", 300), ("deepsjeng", 300)], seed=3)
        times = [r.issue_time_ns for r in gen.generate()]
        assert times == sorted(times)

    def test_sequence_numbers_continuous(self):
        gen = PhasedTraceGenerator([("gcc", 100), ("lbm", 100)], seed=3)
        seqs = [r.seq for r in gen.generate()]
        assert seqs == list(range(1, 201))

    def test_phase_boundaries(self):
        gen = PhasedTraceGenerator([("gcc", 100), ("lbm", 50),
                                    ("namd", 25)], seed=3)
        assert gen.phase_boundaries() == [0, 100, 150]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhasedTraceGenerator([])

    def test_phase_statistics_shift(self):
        """The duplicate rate must actually change across phases."""
        from repro.workloads.analysis import duplicate_stats
        gen = PhasedTraceGenerator([("deepsjeng", 2_000), ("namd", 2_000)],
                                   seed=7)
        trace = gen.generate_list()
        first = duplicate_stats(trace[:2_000])
        second = duplicate_stats(trace[2_000:])
        assert first.duplicate_rate > 0.9
        assert second.duplicate_rate < 0.5

    def test_canonical_phases_runnable(self):
        gen = PhasedTraceGenerator(CANONICAL_PHASES, seed=5)
        assert gen.total_requests == 12_000


class TestPhasedThroughSchemes:
    def test_esd_adapts_across_phases(self, config):
        """Dedup effectiveness must track each phase's duplicate supply."""
        from repro.dedup import make_scheme
        gen = PhasedTraceGenerator([("deepsjeng", 1_500), ("namd", 1_500)],
                                   seed=9)
        trace = gen.generate_list()
        scheme = make_scheme("ESD", config)
        phase_dedup = []
        for i, req in enumerate(trace):
            if req.is_write:
                scheme.handle_write(req)
            if i == 1_499:
                phase_dedup.append(scheme.counters.get("dedup_hits"))
        phase_dedup.append(scheme.counters.get("dedup_hits"))
        first_phase = phase_dedup[0]
        second_phase = phase_dedup[1] - phase_dedup[0]
        assert first_phase > second_phase  # zero-heavy phase dedups more

    def test_integrity_across_phase_shift(self, config):
        from repro.dedup import make_scheme
        from repro.sim import SimulationEngine
        gen = PhasedTraceGenerator([("deepsjeng", 1_000), ("lbm", 1_000),
                                    ("namd", 1_000)], seed=11)
        trace = gen.generate_list()
        engine = SimulationEngine(make_scheme("ESD", config))
        engine.run(iter(trace), app="phased", total_hint=len(trace))

    def test_predictor_retrains_after_shift(self, config):
        """DeWrite's accuracy dips at the boundary, then recovers."""
        from repro.dedup import make_scheme
        gen = PhasedTraceGenerator([("deepsjeng", 2_000), ("namd", 2_000)],
                                   seed=13)
        trace = gen.generate_list()
        scheme = make_scheme("DeWrite", config)
        for req in trace:
            if req.is_write:
                scheme.handle_write(req)
        # Across a hard behaviour shift the predictor still ends usefully
        # above chance.
        assert scheme.predictor.stats.accuracy > 0.55


class TestPhaseBoundaryContinuity:
    """Satellite: the rebased clock at phase seams (zero-gap ties too)."""

    def test_no_backwards_clock_at_boundary(self):
        gen = PhasedTraceGenerator([("deepsjeng", 400), ("namd", 400)],
                                   seed=21)
        trace = gen.generate_list()
        first_max = max(r.issue_time_ns for r in trace[:400])
        assert all(r.issue_time_ns >= first_max for r in trace[400:])

    def test_zero_interarrival_tie_carries_clock(self, monkeypatch):
        """A phase ending in zero-gap ties must not rewind the next one.

        The stub's second request issues at the same instant as an
        *earlier* peak (a tie after an out-of-order-looking burst); the
        next phase has to rebase off the phase's max issue time, not the
        last request's.
        """
        from repro.common.types import AccessType, request_unchecked
        from repro.workloads import phases as phases_mod

        class StubGenerator:
            def __init__(self, app, seed=0):
                self.app = app

            def generate(self, requests):
                times = [5.0, 5.0, 2.0][:requests]
                for i, t in enumerate(times):
                    yield request_unchecked(i * 64, AccessType.READ, None,
                                            t, 0, i + 1)

        monkeypatch.setattr(phases_mod, "TraceGenerator", StubGenerator)
        gen = PhasedTraceGenerator([("gcc", 3), ("lbm", 3)], seed=1)
        trace = gen.generate_list()
        times = [r.issue_time_ns for r in trace]
        # Phase 1 peaks at 5.0; phase 2 must start at 5.0 + its own
        # offsets, never below the peak.
        assert times[:3] == [5.0, 5.0, 2.0]
        assert times[3:] == [10.0, 10.0, 7.0]
        assert [r.seq for r in trace] == list(range(1, 7))

    def test_rebased_requests_preserve_payloads(self):
        """Trusted rebase must keep address/data/core bit-identical."""
        from repro.workloads.generator import TraceGenerator
        phase_len = 250
        gen = PhasedTraceGenerator([("gcc", phase_len)], seed=33)
        rebased = gen.generate_list()
        raw = list(TraceGenerator("gcc", seed=33 * 17).generate(phase_len))
        assert [(a.address, a.access, a.data, a.core) for a in rebased] == \
               [(b.address, b.access, b.data, b.core) for b in raw]
