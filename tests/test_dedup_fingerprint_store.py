"""Tests for the full-dedup fingerprint store (cache + NVMM home)."""

import pytest

from repro.common.config import PCMConfig
from repro.common.units import mib
from repro.dedup.fingerprint_store import (
    FullFingerprintStore,
    LookupWhere,
)
from repro.nvmm.controller import MemoryController


@pytest.fixture
def controller():
    return MemoryController(PCMConfig(capacity_bytes=mib(4), num_banks=4))


def make_store(controller, entries=4, entry_size=26):
    return FullFingerprintStore(cache_bytes=entries * entry_size,
                                entry_size=entry_size, controller=controller)


class TestLookup:
    def test_absent_fingerprint_costs_nvmm_read(self, controller):
        store = make_store(controller)
        result = store.lookup(0xABC, 0.0)
        assert result.where is LookupWhere.ABSENT
        assert not result.found
        assert controller.metadata_reads == 1
        assert store.absent_lookups == 1

    def test_cached_hit_is_cheap(self, controller):
        store = make_store(controller)
        store.insert(0xABC, 7, 0.0)
        before = controller.metadata_reads
        result = store.lookup(0xABC, 10.0)
        assert result.where is LookupWhere.CACHE
        assert result.frame == 7
        assert controller.metadata_reads == before
        assert result.completion_ns == 10.0 + store.probe_latency_ns

    def test_nvmm_hit_after_cache_eviction(self, controller):
        store = make_store(controller, entries=2)
        for i in range(4):
            store.insert(i, i + 100, 0.0)
        result = store.lookup(0, 50.0)
        assert result.where is LookupWhere.NVMM
        assert result.frame == 100
        # The hit re-installs the entry in the cache.
        assert store.lookup(0, 60.0).where is LookupWhere.CACHE

    def test_figure5_split_counters(self, controller):
        store = make_store(controller, entries=2)
        for i in range(4):
            store.insert(i, i, 0.0)
        store.lookup(3, 1.0)   # cache hit
        store.lookup(0, 2.0)   # NVMM hit
        store.lookup(99, 3.0)  # absent
        cache_hits, nvmm_hits = store.duplicate_filter_split()
        assert cache_hits == 1
        assert nvmm_hits == 1
        assert store.nvmm_lookup_ops == 2  # NVMM consulted on both misses


class TestInsertRemove:
    def test_insert_updates_home(self, controller):
        store = make_store(controller)
        store.insert(5, 50, 0.0)
        assert store.contains(5)
        assert store.entry_count == 1

    def test_remove(self, controller):
        store = make_store(controller)
        store.insert(5, 50, 0.0)
        store.remove(5)
        assert not store.contains(5)
        assert store.lookup(5, 0.0).where is LookupWhere.ABSENT

    def test_remove_absent_is_noop(self, controller):
        make_store(controller).remove(123)

    def test_insert_coalescing(self, controller):
        # entry_size 26 -> 2 entries per metadata line.
        store = make_store(controller, entries=100, entry_size=26)
        for i in range(10):
            store.insert(i, i, 0.0)
        assert store.nvmm_insert_writes == 5
        assert controller.metadata_writes == 5

    def test_footprints(self, controller):
        store = make_store(controller, entries=2, entry_size=26)
        for i in range(5):
            store.insert(i, i, 0.0)
        assert store.nvmm_bytes() == 5 * 26
        assert store.onchip_bytes() <= 2 * 26

    def test_validation(self, controller):
        with pytest.raises(ValueError):
            FullFingerprintStore(cache_bytes=0, entry_size=26,
                                 controller=controller)
